"""MTTKRP dispatch and the stateful engine used by the AO-ADMM driver.

:func:`mttkrp` is the stateless convenience entry point.
:class:`MTTKRPEngine` is what the factorization loop uses: it owns the
per-mode CSF trees (built once — the tensor's pattern is static), the
per-tree slab tilings and kernel workspaces (also built once; see
:mod:`repro.tensor.tiling` and :mod:`repro.kernels.workspace`), and the
per-mode factor *representations* (rebuilt when a factor changes — the
factors' sparsity is dynamic, Section IV-C).  It records per-call
statistics for the benchmark harness and the machine model, and mirrors
every call — including memoized ``method="csf"`` hits — into
:mod:`repro.observability` when observability is enabled.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..config import SPARSITY_THRESHOLD
from ..observability import (
    is_enabled,
    record_cache_event,
    record_executor_fallback,
    record_mttkrp_call,
    record_representation,
    record_tiling,
    span,
)
from ..parallel.executor import ExecutorBase, get_executor, resolve_executor
from ..parallel.procpool import ProcessPoolBroken
from ..parallel.shm import ShmArena
from ..parallel.threadpool import effective_threads
from ..sparse.analysis import choose_representation, density
from ..sparse.csr import CSRMatrix
from ..sparse.hybrid import HybridFactor
from ..tensor.coo import COOTensor
from ..tensor.csf import AllModeCSF, CSFTensor
from ..tensor.tiling import CSFTiling
from ..types import FactorList
from ..validation import check_mode, require
from .autotune import BackendAutotuner, resolve_tune_mode
from .mttkrp_coo import mttkrp_coo
from .mttkrp_csf import _upward_to_level, mttkrp_csf
from .mttkrp_sparse import (
    FactorRepresentation,
    leaf_aggregator,
    mttkrp_csf_root_repr,
    representation_name,
    representation_nnz,
)
from .workspace import KernelWorkspace

#: Factor-representation policies for :class:`MTTKRPEngine`.
ReprPolicy = Literal["dense", "csr", "hybrid", "auto"]

#: Memoized trees for the testing-only ``method="csf"`` path, keyed by
#: ``(id(tensor), mode)``.  Entries pin the source ``coords``/``vals``
#: arrays so the identity check below cannot be fooled by ``id`` reuse
#: after garbage collection; the cache is small and FIFO-bounded.
_CSF_METHOD_CACHE: dict[tuple[int, int],
                        tuple[np.ndarray, np.ndarray, CSFTensor]] = {}
_CSF_METHOD_CACHE_MAX = 8
_MEMOIZATION_ENABLED = True

#: Memoized model-tuned execution plans for the stateless
#: ``mttkrp(method="auto")`` path, keyed by ``(id(tensor), mode, rank)``
#: with the same array-pinning identity check as the tree memo above.
_AUTO_PLAN_CACHE: dict[tuple[int, int, int],
                       tuple[np.ndarray, np.ndarray, CSFTiling,
                             KernelWorkspace]] = {}
_AUTO_PLAN_CACHE_MAX = 8


def configure_memoization(enabled: bool) -> bool:
    """Globally enable/disable kernel memoization; returns the old setting.

    Disabling also drops the current cache contents.  Memoized trees
    pin their source arrays, so under memory pressure the supervisor's
    degradation ladder turns this off to trade recompute time for
    released memory — results are bit-identical either way (the cache
    only avoids re-sorting, it never changes values).
    """
    global _MEMOIZATION_ENABLED
    previous = _MEMOIZATION_ENABLED
    _MEMOIZATION_ENABLED = bool(enabled)
    if not _MEMOIZATION_ENABLED:
        _CSF_METHOD_CACHE.clear()
        _AUTO_PLAN_CACHE.clear()
    return previous


def memoization_enabled() -> bool:
    """Whether kernel memoization is currently on (see above)."""
    return _MEMOIZATION_ENABLED


def _csf_for_method(tensor: COOTensor, mode: int) -> CSFTensor:
    """Build (or reuse) a mode-rooted tree for ``mttkrp(..., method="csf")``.

    This path exists for testing and one-off calls; sustained use should
    go through :class:`MTTKRPEngine` / :class:`AllModeCSF`, which amortize
    the ``O(nnz log nnz)`` sort properly.  The memo here merely keeps
    repeated test calls from re-sorting the same tensor on every call.
    """
    key = (id(tensor), mode)
    hit = _CSF_METHOD_CACHE.get(key) if _MEMOIZATION_ENABLED else None
    if hit is not None and hit[0] is tensor.coords and hit[1] is tensor.vals:
        # A memoized tree used to make the call's stats vanish entirely;
        # the registry keeps every invocation visible (cache_hit counter).
        record_cache_event("mttkrp_csf_method", hit=True)
        return hit[2]
    record_cache_event("mttkrp_csf_method", hit=False)
    order = None if mode == 0 else (
        (mode,) + tuple(m for m in range(tensor.nmodes) if m != mode))
    tree = CSFTensor.from_coo(tensor, mode_order=order)
    if _MEMOIZATION_ENABLED:
        if len(_CSF_METHOD_CACHE) >= _CSF_METHOD_CACHE_MAX:
            _CSF_METHOD_CACHE.pop(next(iter(_CSF_METHOD_CACHE)))
        _CSF_METHOD_CACHE[key] = (tensor.coords, tensor.vals, tree)
    return tree


def _auto_plan(tensor: COOTensor, mode: int, rank: int
               ) -> tuple[CSFTensor, CSFTiling, KernelWorkspace]:
    """Build (or reuse) the model-tuned plan for one stateless auto call.

    Stateless calls always seed from the analytic model — even under
    ``REPRO_TUNE=measure`` — because a one-off call cannot amortize a
    timed probe (engines and fits are where measuring pays).  Every
    candidate plan is the same csf-family sweep, so the selection is
    bit-invisible: ``method="auto"`` equals ``method="csf"`` exactly.
    """
    key = (id(tensor), mode, rank)
    hit = _AUTO_PLAN_CACHE.get(key) if _MEMOIZATION_ENABLED else None
    if hit is not None and hit[0] is tensor.coords and hit[1] is tensor.vals:
        record_cache_event("mttkrp_auto_plan", hit=True)
        return hit[2].csf, hit[2], hit[3]
    record_cache_event("mttkrp_auto_plan", hit=False)
    tree = _csf_for_method(tensor, mode)
    tuner = BackendAutotuner(mode="model")
    decision = tuner.decide_tree(tree, mode, rank)
    tiling = CSFTiling(tree, slab_nnz_target=decision.slab_nnz_target)
    ws = KernelWorkspace(tiling)
    if _MEMOIZATION_ENABLED:
        if len(_AUTO_PLAN_CACHE) >= _AUTO_PLAN_CACHE_MAX:
            _AUTO_PLAN_CACHE.pop(next(iter(_AUTO_PLAN_CACHE)))
        _AUTO_PLAN_CACHE[key] = (tensor.coords, tensor.vals, tiling, ws)
    return tree, tiling, ws


def mttkrp(tensor: COOTensor | CSFTensor | AllModeCSF, factors: FactorList,
           mode: int, method: str = "auto") -> np.ndarray:
    """Compute MTTKRP for *mode* with the requested *method*.

    ``method="auto"`` (the default) routes COO input through the
    model-tuned slab-tiled CSF kernels — the same bit-identity family as
    ``method="csf"``, so the tuner's slab choice (and the ``REPRO_TUNE``
    mode, including ``off``, which degrades to the untiled ``csf``
    path) never changes a single output bit.  CSF inputs always use the
    CSF root kernel; ``method="coo"`` forces the vectorized COO kernel
    (a different summation order — its own comparison family).
    """
    if isinstance(tensor, AllModeCSF):
        return mttkrp_csf(tensor.csf(mode), factors, mode)
    if isinstance(tensor, CSFTensor):
        return mttkrp_csf(tensor, factors, mode)
    require(isinstance(tensor, COOTensor), "unsupported tensor type")
    if method == "coo":
        return mttkrp_coo(tensor, factors, mode)
    if method == "auto" and resolve_tune_mode() != "off":
        rank = int(np.asarray(factors[0]).shape[1])
        tree, tiling, ws = _auto_plan(tensor, mode, rank)
        start = time.perf_counter()
        with span("mttkrp", mode=mode, method="auto"):
            out = mttkrp_csf(tree, factors, mode, tiling=tiling,
                             workspace=ws)
        if is_enabled():
            record_mttkrp_call(MTTKRPCallStats(
                mode=mode, leaf_mode=tree.mode_order[-1],
                representation="dense",
                gathered_nnz=tree.nnz * rank,
                tensor_nnz=tree.nnz,
                slab_count=tiling.slab_count,
                seconds=time.perf_counter() - start,
                executor="serial",
            ), rank=rank)
        # The workspace buffer is pooled (valid until the next call for
        # this plan); the stateless contract hands back an owned array.
        return np.array(out, copy=True)
    if method in ("auto", "csf"):
        tree = _csf_for_method(tensor, mode)
        start = time.perf_counter()
        with span("mttkrp", mode=mode, method="csf"):
            out = mttkrp_csf(tree, factors, mode)
        if is_enabled():
            record_mttkrp_call(MTTKRPCallStats(
                mode=mode, leaf_mode=tree.mode_order[-1],
                representation="dense",
                gathered_nnz=tree.nnz * int(np.asarray(factors[0]).shape[1]),
                tensor_nnz=tree.nnz,
                seconds=time.perf_counter() - start,
            ), rank=int(np.asarray(factors[0]).shape[1]))
        return out
    raise ValueError(f"unknown MTTKRP method {method!r}")


@dataclass
class MTTKRPCallStats:
    """Bookkeeping for one MTTKRP invocation."""

    mode: int
    leaf_mode: int
    representation: str
    gathered_nnz: int
    tensor_nnz: int
    #: Slabs the call was decomposed into (1 = monolithic).
    slab_count: int = 1
    #: Fresh workspace bytes allocated during the call (0 after warm-up
    #: on a static pattern — the zero-allocation guarantee).
    bytes_allocated: int = 0
    #: Wall-clock seconds of the kernel call.
    seconds: float = 0.0
    #: Execution backend that ran the slabs (``serial``/``thread``/
    #: ``process``; monolithic and sparse-representation calls run
    #: inline regardless).
    executor: str = "thread"
    #: Worker/thread count the call was allowed to use.
    workers: int = 1


class MTTKRPEngine:
    """Per-mode CSF trees + tilings + workspaces + factor representations.

    Parameters
    ----------
    tensor:
        The sparse tensor (COO); one CSF tree per mode is built lazily.
    repr_policy:
        ``"dense"`` — always dense factors (the paper's DENSE baseline);
        ``"csr"`` / ``"hybrid"`` — force that structure whenever the factor
        is below the density threshold; ``"auto"`` — apply
        :func:`repro.sparse.analysis.choose_representation`.
    sparsity_threshold:
        Density below which a factor may be stored sparse (paper: 20%).
    tol:
        Magnitude at or below which a factor entry counts as zero.
    csf_allocation:
        ``"all"`` builds one tree per mode (SPLATT's ALLMODE — fastest);
        ``"one"`` keeps a single tree and serves the other modes with the
        internal/leaf kernels (SPLATT's memory-lean ONEMODE policy).
    threads:
        Thread count for slab-parallel kernel execution (``None`` = auto
        via ``REPRO_NUM_THREADS`` / CPU count).  Results are bit-identical
        for any value — slabs are independent and the reductions are
        deterministic.
    slab_nnz_target:
        Non-zeros per slab for the tilings (``None`` =
        :data:`repro.config.DEFAULT_SLAB_NNZ`).
    executor:
        Execution backend for the tiled kernels: ``"serial"``,
        ``"thread"``, ``"process"``, or an
        :class:`~repro.parallel.executor.ExecutorBase` instance.
        ``None`` resolves ``REPRO_EXECUTOR`` (default ``thread``).  The
        process executor maps the CSF arrays and factors into shared
        memory and runs slab batches GIL-free in a persistent worker
        pool; results stay bit-identical across all executors.  If the
        pool breaks beyond its respawn budget mid-call, the engine
        records a :class:`~repro.robustness.guards.GuardEvent` in
        :attr:`executor_events`, falls back to the thread executor for
        the rest of its lifetime, and recomputes the call.

    Notes
    -----
    Dense-path MTTKRP outputs are written into pooled workspace buffers:
    the returned array is valid until the **next** call for the same
    mode.  Every driver in this repository consumes the output before
    then; copy it if you need it to survive.

    A process-executor engine owns shared-memory segments; call
    :meth:`close` (or use the engine as a context manager) to release
    them deterministically — garbage collection and an ``atexit`` sweep
    cover engines that are simply dropped.
    """

    def __init__(self, tensor: COOTensor,
                 repr_policy: ReprPolicy = "dense",
                 sparsity_threshold: float = SPARSITY_THRESHOLD,
                 tol: float = 0.0,
                 csf_allocation: str = "all",
                 threads: int | None = 1,
                 slab_nnz_target: int | None = None,
                 executor: "str | ExecutorBase | None" = None):
        require(repr_policy in ("dense", "csr", "hybrid", "auto"),
                f"unknown representation policy {repr_policy!r}")
        require(csf_allocation in ("all", "one"),
                f"unknown CSF allocation {csf_allocation!r}")
        self.trees = AllModeCSF(tensor)
        self.csf_allocation = csf_allocation
        self.repr_policy: ReprPolicy = repr_policy
        self.sparsity_threshold = float(sparsity_threshold)
        self.tol = float(tol)
        self.threads = threads
        self.slab_nnz_target = slab_nnz_target
        #: Per-root-mode slab targets installed by :meth:`apply_tuning`
        #: (they take precedence over the engine-wide ``slab_nnz_target``).
        self._tuned_targets: dict[int, int] = {}
        #: The autotuner's :class:`~repro.kernels.autotune.TuningReport`
        #: (``None`` until :meth:`apply_tuning` runs).
        self.tuning = None
        self._executor = resolve_executor(executor)
        #: Shared-memory plane for the process executor (one arena per
        #: engine; ``None`` for in-process executors).
        self._arena: ShmArena | None = (
            ShmArena(tag="engine") if self._executor.offloads_slabs
            else None)
        #: Guard events from executor failures (pool broken → thread
        #: fallback), in order.
        self.executor_events: list = []
        self._reps: dict[int, FactorRepresentation] = {}
        self._rep_names: dict[int, str] = {}
        self._aggregators: dict[int, object] = {}
        #: Static per-tree decompositions, keyed by the tree's root mode.
        self._tilings: dict[int, CSFTiling] = {}
        self._workspaces: dict[int, KernelWorkspace] = {}
        #: Stats of every MTTKRP call, in order.
        self.call_log: list[MTTKRPCallStats] = []

    @property
    def nmodes(self) -> int:
        return self.trees.nmodes

    @property
    def executor_name(self) -> str:
        """Name of the executor currently serving the tiled kernels."""
        return self._executor.name

    # ------------------------------------------------------------------
    # Executor lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the engine's shared-memory segments (idempotent).

        The worker pool itself is the executor's (usually the
        process-wide singleton's) and stays warm for other engines.
        """
        if self._arena is not None:
            self._arena.close()

    def __enter__(self) -> "MTTKRPEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _fallback_to_threads(self, exc: Exception, mode: int) -> None:
        """Pool broke beyond repair: record the event, demote to threads."""
        from ..robustness.guards import GuardEvent
        event = GuardEvent(iteration=0, kind="worker_lost", site="mttkrp",
                           action="executor_fallback", mode=mode,
                           detail=f"{self._executor.name} -> thread: "
                                  f"{exc}")
        self.executor_events.append(event)
        record_executor_fallback(self._executor.name, "thread",
                                 detail=str(exc))
        self._executor = get_executor("thread")

    def _run_tiled(self, csf, factors, mode: int, tiling, ws) -> np.ndarray:
        """One tiled MTTKRP, with pool-failure fallback + single retry.

        Slab batches are idempotent (disjoint fully-overwritten output
        ranges), so recomputing the whole call after a fallback is safe
        and bit-identical.
        """
        try:
            return mttkrp_csf(csf, factors, mode, tiling=tiling,
                              workspace=ws, threads=self.threads,
                              executor=self._executor)
        except ProcessPoolBroken as exc:
            self._fallback_to_threads(exc, mode)
            return mttkrp_csf(csf, factors, mode, tiling=tiling,
                              workspace=ws, threads=self.threads,
                              executor=self._executor)

    # ------------------------------------------------------------------
    # Tiling / workspace management (static: one per tree, built lazily)
    # ------------------------------------------------------------------
    def apply_tuning(self, report) -> None:
        """Install per-mode slab targets from an autotuner report.

        Tilings are static (built once, reused for the whole
        factorization), so tuning must land before the first
        :meth:`tiling` call for any mode — the autotuner's
        ``tune_engine`` and :func:`make_engine` both respect that.
        Selection is performance-only: every candidate the tuner
        considers is the same csf-family sweep, so the installed
        targets never change a single output bit.
        """
        require(not self._tilings,
                "apply_tuning must run before any tiling is built "
                "(slab decompositions are static)")
        self._tuned_targets = dict(report.slab_targets())
        self.tuning = report

    def tiling(self, root_mode: int) -> CSFTiling:
        """The slab tiling of the tree rooted at *root_mode*."""
        tiling = self._tilings.get(root_mode)
        if tiling is None:
            target = self._tuned_targets.get(root_mode,
                                             self.slab_nnz_target)
            tiling = CSFTiling(self.trees.csf(root_mode),
                               slab_nnz_target=target)
            self._tilings[root_mode] = tiling
            record_tiling(tiling, root_mode)
        return tiling

    def workspace(self, root_mode: int) -> KernelWorkspace:
        """The kernel workspace of the tree rooted at *root_mode*."""
        ws = self._workspaces.get(root_mode)
        if ws is None:
            ws = KernelWorkspace(self.tiling(root_mode),
                                 shared_arena=self._arena)
            self._workspaces[root_mode] = ws
        return ws

    def workspace_bytes(self) -> int:
        """Total bytes currently pooled across all workspaces."""
        return sum(ws.bytes_allocated for ws in self._workspaces.values())

    # ------------------------------------------------------------------
    # Representation management
    # ------------------------------------------------------------------
    def update_factor(self, mode: int, factor: np.ndarray) -> str:
        """Re-derive the representation of *mode*'s factor; returns its name.

        Called by the driver after every factor update — this is where the
        dynamic sparsity of Section IV-C enters.  The ``O(I F)``
        construction cost is accepted exactly as in the paper (amortized
        over the ADMM iterations of the following outer sweep).
        """
        mode = check_mode(mode, self.nmodes)
        name = self._decide(factor)
        if name == "csr":
            rep: FactorRepresentation = CSRMatrix.from_dense(
                factor, tol=self.tol)
        elif name == "csr-h":
            rep = HybridFactor(factor, tol=self.tol)
        else:
            rep = np.ascontiguousarray(factor)
        self._reps[mode] = rep
        self._rep_names[mode] = name
        record_representation(mode, name, rep)
        return name

    def representation(self, mode: int) -> str:
        """Current representation name of *mode* (default ``"dense"``)."""
        return self._rep_names.get(mode, "dense")

    def _decide(self, factor: np.ndarray) -> str:
        if self.repr_policy == "dense":
            return "dense"
        dens = density(factor, self.tol)
        if dens >= self.sparsity_threshold:
            return "dense"
        if self.repr_policy == "csr":
            return "csr"
        if self.repr_policy == "hybrid":
            return "csr-h"
        choice = choose_representation(
            factor, self.tol, self.sparsity_threshold)
        return {"dense": "dense", "csr": "csr", "hybrid": "csr-h"}[choice]

    # ------------------------------------------------------------------
    # The kernel entry point
    # ------------------------------------------------------------------
    def mttkrp(self, factors: FactorList, mode: int) -> np.ndarray:
        """MTTKRP for *mode*, honoring the deep factor's representation."""
        mode = check_mode(mode, self.nmodes)
        start = time.perf_counter()
        if self.csf_allocation == "one":
            # Memory-lean: a single mode-0-rooted tree serves every mode
            # via the root / internal / leaf kernels.  Sparse factor
            # representations need the root kernel's leaf aggregation, so
            # this policy always computes dense (documented trade-off).
            csf = self.trees.csf(0)
            tiling = self.tiling(0)
            ws = self.workspace(0)
            allocs0, bytes0 = ws.snapshot()
            with span("mttkrp", mode=mode, representation="dense"):
                out = self._run_tiled(csf, factors, mode, tiling, ws)
            _, bytes1 = ws.snapshot()
            stats = MTTKRPCallStats(
                mode=mode, leaf_mode=csf.mode_order[-1],
                representation="dense",
                gathered_nnz=csf.nnz * int(np.asarray(factors[0]).shape[1]),
                tensor_nnz=csf.nnz,
                slab_count=tiling.slab_count,
                bytes_allocated=bytes1 - bytes0,
                seconds=time.perf_counter() - start,
                executor=self._executor.name,
                workers=effective_threads(self.threads))
            self.call_log.append(stats)
            record_mttkrp_call(
                stats, rank=int(np.asarray(factors[0]).shape[1]))
            return out
        csf = self.trees.csf(mode)
        leaf_mode = csf.mode_order[-1]
        rep = self._reps.get(leaf_mode)
        if rep is None or isinstance(rep, np.ndarray):
            # Dense path: slab-tiled Algorithm 3 through the workspace.
            tiling = self.tiling(mode)
            ws = self.workspace(mode)
            _, bytes0 = ws.snapshot()
            with span("mttkrp", mode=mode, representation="dense"):
                out = self._run_tiled(csf, factors, mode, tiling, ws)
            _, bytes1 = ws.snapshot()
            rep_name = "dense"
            touched = csf.nnz * int(np.asarray(factors[0]).shape[1])
            slab_count = tiling.slab_count
            bytes_allocated = bytes1 - bytes0
            call_executor = self._executor.name
        else:
            agg = self._aggregators.get(mode)
            if agg is None:
                # One-time per tree: the tensor pattern is static.
                agg = leaf_aggregator(csf)
                self._aggregators[mode] = agg
            rep_name = representation_name(rep)
            with span("mttkrp", mode=mode, representation=rep_name):
                out = mttkrp_csf_root_repr(csf, factors, rep, aggregator=agg)
            touched = representation_nnz(rep, csf.fids[csf.nmodes - 1])
            slab_count = 1
            bytes_allocated = 0
            # Sparse-representation calls run inline in the parent.
            call_executor = "serial"
        stats = MTTKRPCallStats(
            mode=mode, leaf_mode=leaf_mode, representation=rep_name,
            gathered_nnz=touched, tensor_nnz=csf.nnz,
            slab_count=slab_count, bytes_allocated=bytes_allocated,
            seconds=time.perf_counter() - start,
            executor=call_executor,
            workers=effective_threads(self.threads))
        self.call_log.append(stats)
        record_mttkrp_call(stats, rank=int(np.asarray(factors[0]).shape[1]))
        return out


class StreamingMTTKRPEngine:
    """Out-of-core MTTKRP over a :class:`~repro.tensor.store.ShardedTensorStore`.

    Drop-in replacement for :class:`MTTKRPEngine` on the driver side
    (same ``update_factor`` / ``mttkrp`` / ``representation`` / ``close``
    / ``call_log`` / ``executor_events`` surface), but instead of owning
    in-core CSF trees it streams each mode's pre-sharded slabs from disk
    through an LRU :class:`~repro.tensor.ooc.SlabCache` bounded by
    ``max_bytes_in_core``, prefetching one slab ahead through the
    executor while the parent computes on the current one.

    **Bit-identity.**  The store holds ALLMODE trees split at root-slice
    boundaries, so every slab is served by the root kernel: the per-slab
    upward sweep (:func:`~repro.kernels.mttkrp_csf._upward_to_level`) is
    computed segment-by-segment exactly as the monolithic in-core sweep
    would (fiber segments never cross a slab boundary), and each slab
    writes a **disjoint** set of output rows (root ids are unique and
    ascending across slabs), so no reduction — and no reduction-order
    sensitivity — exists.  Residency decisions only change *when* bytes
    are mapped, never *what* is computed, so factors and traces are
    bit-identical to the in-core engines for any byte budget, eviction
    schedule, or prefetch timing.

    Streaming always computes with dense factors (the root kernel's
    sparse-representation path needs a persistent leaf aggregator per
    tree, which would defeat eviction), so ``repr_policy`` must be
    ``"dense"``.
    """

    def __init__(self, store,
                 repr_policy: ReprPolicy = "dense",
                 threads: int | None = 1,
                 executor: "str | ExecutorBase | None" = None,
                 max_bytes_in_core: int | None = None,
                 prefetch: bool = True):
        from ..tensor.ooc import SlabCache, SlabStreamer
        from ..tensor.store import resolve_byte_budget
        require(repr_policy == "dense",
                "the streaming (out-of-core) engine computes with dense "
                f"factors only; got repr_policy={repr_policy!r}")
        self.store = store
        self.repr_policy: ReprPolicy = "dense"
        self.threads = threads
        self._executor = resolve_executor(executor)
        if max_bytes_in_core is None:
            max_bytes_in_core = getattr(store, "max_bytes_in_core", None)
        if max_bytes_in_core is None:
            max_bytes_in_core = resolve_byte_budget()
        #: One residency set shared by every mode — the byte budget is a
        #: process-level promise, not a per-mode one.
        self.cache = SlabCache(max_bytes_in_core)
        self._streamer = SlabStreamer(store, self.cache,
                                      executor=self._executor,
                                      prefetch=prefetch)
        self._rep_names: dict[int, str] = {}
        #: Pooled output buffers, one per mode (zero-allocation after
        #: warm-up, matching the in-core workspace contract: the result
        #: is valid until the next call for the same mode).
        self._out: dict[int, np.ndarray] = {}
        self.executor_events: list = []
        self.call_log: list[MTTKRPCallStats] = []

    @property
    def nmodes(self) -> int:
        return self.store.nmodes

    @property
    def executor_name(self) -> str:
        return self._executor.name

    @property
    def max_bytes_in_core(self) -> int | None:
        return self.cache.max_bytes_in_core

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop resident slabs (idempotent; the store stays open)."""
        self.cache.clear()

    def __enter__(self) -> "StreamingMTTKRPEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def update_factor(self, mode: int, factor: np.ndarray) -> str:
        """Register a factor update; streaming always computes dense."""
        mode = check_mode(mode, self.nmodes)
        self._rep_names[mode] = "dense"
        record_representation(mode, "dense", np.asarray(factor))
        return "dense"

    def representation(self, mode: int) -> str:
        return self._rep_names.get(mode, "dense")

    def _out_buffer(self, mode: int, rank: int) -> tuple[np.ndarray, int]:
        shape = (self.store.shape[mode], rank)
        out = self._out.get(mode)
        allocated = 0
        if out is None or out.shape != shape:
            out = np.empty(shape, dtype=np.float64)
            self._out[mode] = out
            allocated = out.nbytes
        out.fill(0.0)
        return out, allocated

    def mttkrp(self, factors: FactorList, mode: int) -> np.ndarray:
        """MTTKRP for *mode*, streamed slab-by-slab under the byte budget."""
        mode = check_mode(mode, self.nmodes)
        rank = int(np.asarray(factors[0]).shape[1])
        start = time.perf_counter()
        out, allocated = self._out_buffer(mode, rank)
        with span("mttkrp", mode=mode, representation="dense",
                  streaming=True):
            for slab in self._streamer.iter_mode(mode):
                tree = slab.tree
                # The root kernel on one slab: fibers never straddle a
                # slab boundary and root ids are disjoint across slabs,
                # so these row writes compose bit-identically with the
                # monolithic sweep.
                rows = _upward_to_level(tree, factors, 0)
                out[tree.fids[0]] = rows
        stats = MTTKRPCallStats(
            mode=mode, leaf_mode=self.store.mode_order(mode)[-1],
            representation="dense",
            gathered_nnz=self.store.nnz * rank,
            tensor_nnz=self.store.nnz,
            slab_count=self.store.slab_count(mode),
            bytes_allocated=allocated,
            seconds=time.perf_counter() - start,
            executor=self._executor.name,
            workers=effective_threads(self.threads))
        self.call_log.append(stats)
        record_mttkrp_call(stats, rank=rank)
        return out


def make_engine(tensor,
                repr_policy: ReprPolicy = "dense",
                sparsity_threshold: float = SPARSITY_THRESHOLD,
                tol: float = 0.0,
                csf_allocation: str = "all",
                threads: int | None = 1,
                slab_nnz_target: int | None = None,
                executor: "str | ExecutorBase | None" = None,
                max_bytes_in_core: int | None = None,
                rank: int | None = None,
                tune: str | None = None):
    """Build the right MTTKRP engine for any ``TensorSource``.

    The single dispatch point the drivers use:

    * :class:`~repro.tensor.store.ShardedTensorStore` →
      :class:`StreamingMTTKRPEngine` (out-of-core, budget-bounded);
    * :class:`~repro.tensor.csf.CSFTensor` → expanded back to COO (the
      engine re-sorts per mode anyway) and handled below;
    * :class:`~repro.tensor.coo.COOTensor` → :class:`MTTKRPEngine` with
      all trees built eagerly (the historical driver behaviour).

    ``max_bytes_in_core`` only influences the out-of-core path; in-core
    tensors are already resident and the knob is ignored for them.

    When *rank* is given, *slab_nnz_target* is not (an explicit target
    is a user pin), and the resolved tune mode (*tune* argument, else
    ``REPRO_TUNE``, else ``"model"``) is not ``"off"``, the in-core
    engine's per-mode slab targets are chosen by the
    :class:`~repro.kernels.autotune.BackendAutotuner` — selection is
    performance-only and bit-invisible (csf family).  The streaming
    engine is never tuned: its slab decomposition was fixed on disk
    when the store was sharded.
    """
    from ..tensor.store import ShardedTensorStore
    if isinstance(tensor, ShardedTensorStore):
        if repr_policy != "dense":
            # The streaming root kernel has no sparse-factor variant
            # (a persistent per-tree leaf aggregator would defeat
            # eviction): degrade to dense rather than fail — otherwise
            # a process-wide REPRO_MAX_BYTES_IN_CORE would break any
            # run configured with repr_policy="auto"/"csr".
            warnings.warn(
                f"repr_policy={repr_policy!r} is unavailable out of "
                "core; the streaming engine computes with dense factors",
                RuntimeWarning, stacklevel=2)
        return StreamingMTTKRPEngine(
            tensor, threads=threads,
            executor=executor, max_bytes_in_core=max_bytes_in_core)
    if isinstance(tensor, CSFTensor):
        tensor = tensor.to_coo()
    require(isinstance(tensor, COOTensor),
            f"cannot build an MTTKRP engine from {type(tensor).__name__}")
    engine = MTTKRPEngine(tensor, repr_policy=repr_policy,
                          sparsity_threshold=sparsity_threshold,
                          tol=tol, csf_allocation=csf_allocation,
                          threads=threads,
                          slab_nnz_target=slab_nnz_target,
                          executor=executor)
    engine.trees.build_all()
    if rank is not None and slab_nnz_target is None:
        tune_mode = resolve_tune_mode(tune)
        if tune_mode != "off":
            tuner = BackendAutotuner(mode=tune_mode)
            tuner.tune_engine(engine, rank)
    return engine
