"""MTTKRP dispatch and the stateful engine used by the AO-ADMM driver.

:func:`mttkrp` is the stateless convenience entry point.
:class:`MTTKRPEngine` is what the factorization loop uses: it owns the
per-mode CSF trees (built once — the tensor's pattern is static) and the
per-mode factor *representations* (rebuilt when a factor changes — the
factors' sparsity is dynamic, Section IV-C), and it records per-call
statistics for the benchmark harness and the machine model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from ..config import SPARSITY_THRESHOLD
from ..sparse.analysis import choose_representation, density
from ..sparse.csr import CSRMatrix
from ..sparse.hybrid import HybridFactor
from ..tensor.coo import COOTensor
from ..tensor.csf import AllModeCSF, CSFTensor
from ..types import FactorList
from ..validation import check_mode, require
from .mttkrp_coo import mttkrp_coo
from .mttkrp_csf import mttkrp_csf
from .mttkrp_sparse import (
    FactorRepresentation,
    leaf_aggregator,
    mttkrp_csf_root_repr,
    representation_name,
    representation_nnz,
)

#: Factor-representation policies for :class:`MTTKRPEngine`.
ReprPolicy = Literal["dense", "csr", "hybrid", "auto"]


def mttkrp(tensor: COOTensor | CSFTensor | AllModeCSF, factors: FactorList,
           mode: int, method: str = "auto") -> np.ndarray:
    """Compute MTTKRP for *mode* with the requested *method*.

    ``method="auto"`` uses the CSF root kernel when given CSF data and the
    vectorized COO kernel otherwise.
    """
    if isinstance(tensor, AllModeCSF):
        return mttkrp_csf(tensor.csf(mode), factors, mode)
    if isinstance(tensor, CSFTensor):
        return mttkrp_csf(tensor, factors, mode)
    require(isinstance(tensor, COOTensor), "unsupported tensor type")
    if method in ("auto", "coo"):
        return mttkrp_coo(tensor, factors, mode)
    if method == "csf":
        return mttkrp_csf(
            CSFTensor.from_coo(tensor,
                               mode_order=None if mode == 0 else
                               (mode,) + tuple(m for m in range(tensor.nmodes)
                                               if m != mode)),
            factors, mode)
    raise ValueError(f"unknown MTTKRP method {method!r}")


@dataclass
class MTTKRPCallStats:
    """Bookkeeping for one MTTKRP invocation."""

    mode: int
    leaf_mode: int
    representation: str
    gathered_nnz: int
    tensor_nnz: int


class MTTKRPEngine:
    """Per-mode CSF trees + dynamic factor representations.

    Parameters
    ----------
    tensor:
        The sparse tensor (COO); one CSF tree per mode is built lazily.
    repr_policy:
        ``"dense"`` — always dense factors (the paper's DENSE baseline);
        ``"csr"`` / ``"hybrid"`` — force that structure whenever the factor
        is below the density threshold; ``"auto"`` — apply
        :func:`repro.sparse.analysis.choose_representation`.
    sparsity_threshold:
        Density below which a factor may be stored sparse (paper: 20%).
    tol:
        Magnitude at or below which a factor entry counts as zero.
    """

    def __init__(self, tensor: COOTensor,
                 repr_policy: ReprPolicy = "dense",
                 sparsity_threshold: float = SPARSITY_THRESHOLD,
                 tol: float = 0.0,
                 csf_allocation: str = "all"):
        require(repr_policy in ("dense", "csr", "hybrid", "auto"),
                f"unknown representation policy {repr_policy!r}")
        require(csf_allocation in ("all", "one"),
                f"unknown CSF allocation {csf_allocation!r}")
        self.trees = AllModeCSF(tensor)
        #: "all" builds one tree per mode (SPLATT's ALLMODE — fastest);
        #: "one" keeps a single tree and serves the other modes with the
        #: internal/leaf kernels (SPLATT's memory-lean ONEMODE policy).
        self.csf_allocation = csf_allocation
        self.repr_policy: ReprPolicy = repr_policy
        self.sparsity_threshold = float(sparsity_threshold)
        self.tol = float(tol)
        self._reps: dict[int, FactorRepresentation] = {}
        self._rep_names: dict[int, str] = {}
        self._aggregators: dict[int, object] = {}
        #: Stats of every MTTKRP call, in order.
        self.call_log: list[MTTKRPCallStats] = []

    @property
    def nmodes(self) -> int:
        return self.trees.nmodes

    # ------------------------------------------------------------------
    # Representation management
    # ------------------------------------------------------------------
    def update_factor(self, mode: int, factor: np.ndarray) -> str:
        """Re-derive the representation of *mode*'s factor; returns its name.

        Called by the driver after every factor update — this is where the
        dynamic sparsity of Section IV-C enters.  The ``O(I F)``
        construction cost is accepted exactly as in the paper (amortized
        over the ADMM iterations of the following outer sweep).
        """
        mode = check_mode(mode, self.nmodes)
        name = self._decide(factor)
        if name == "csr":
            rep: FactorRepresentation = CSRMatrix.from_dense(
                factor, tol=self.tol)
        elif name == "csr-h":
            rep = HybridFactor(factor, tol=self.tol)
        else:
            rep = np.ascontiguousarray(factor)
        self._reps[mode] = rep
        self._rep_names[mode] = name
        return name

    def representation(self, mode: int) -> str:
        """Current representation name of *mode* (default ``"dense"``)."""
        return self._rep_names.get(mode, "dense")

    def _decide(self, factor: np.ndarray) -> str:
        if self.repr_policy == "dense":
            return "dense"
        dens = density(factor, self.tol)
        if dens >= self.sparsity_threshold:
            return "dense"
        if self.repr_policy == "csr":
            return "csr"
        if self.repr_policy == "hybrid":
            return "csr-h"
        choice = choose_representation(
            factor, self.tol, self.sparsity_threshold)
        return {"dense": "dense", "csr": "csr", "hybrid": "csr-h"}[choice]

    # ------------------------------------------------------------------
    # The kernel entry point
    # ------------------------------------------------------------------
    def mttkrp(self, factors: FactorList, mode: int) -> np.ndarray:
        """MTTKRP for *mode*, honoring the deep factor's representation."""
        mode = check_mode(mode, self.nmodes)
        if self.csf_allocation == "one":
            # Memory-lean: a single mode-0-rooted tree serves every mode
            # via the root / internal / leaf kernels.  Sparse factor
            # representations need the root kernel's leaf aggregation, so
            # this policy always computes dense (documented trade-off).
            csf = self.trees.csf(0)
            out = mttkrp_csf(csf, factors, mode)
            self.call_log.append(MTTKRPCallStats(
                mode=mode, leaf_mode=csf.mode_order[-1],
                representation="dense",
                gathered_nnz=csf.nnz * int(np.asarray(factors[0]).shape[1]),
                tensor_nnz=csf.nnz))
            return out
        csf = self.trees.csf(mode)
        leaf_mode = csf.mode_order[-1]
        rep = self._reps.get(leaf_mode)
        if rep is None or isinstance(rep, np.ndarray):
            # Dense path: plain Algorithm 3.
            out = mttkrp_csf_root_repr(csf, factors, None)
            rep_name = "dense"
            touched = csf.nnz * int(np.asarray(factors[0]).shape[1])
        else:
            agg = self._aggregators.get(mode)
            if agg is None:
                # One-time per tree: the tensor pattern is static.
                agg = leaf_aggregator(csf)
                self._aggregators[mode] = agg
            out = mttkrp_csf_root_repr(csf, factors, rep, aggregator=agg)
            rep_name = representation_name(rep)
            touched = representation_nnz(rep, csf.fids[csf.nmodes - 1])
        self.call_log.append(MTTKRPCallStats(
            mode=mode, leaf_mode=leaf_mode, representation=rep_name,
            gathered_nnz=touched, tensor_nnz=csf.nnz))
        return out
