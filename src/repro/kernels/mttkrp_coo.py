"""MTTKRP on coordinate tensors.

:func:`mttkrp_coo_reference` is the transparent triple-checkable oracle
(explicit Python loop); :func:`mttkrp_coo` is the production COO path —
one Khatri-Rao row gather plus a sort-based row scatter.  COO does not see
the fiber structure, so it re-reads a row of every non-target factor per
non-zero; the CSF kernels avoid exactly that (see
:mod:`repro.kernels.mttkrp_csf`).
"""

from __future__ import annotations

import numpy as np

from ..linalg.khatri_rao import khatri_rao_rows
from ..tensor.coo import COOTensor
from ..types import VALUE_DTYPE, FactorList
from ..validation import check_mode, require
from .scatter import scatter_add_rows


def _check_factors(tensor_shape: tuple[int, ...], factors: FactorList) -> int:
    require(len(factors) == len(tensor_shape),
            "one factor per tensor mode required")
    rank = np.asarray(factors[0]).shape[1]
    for m, factor in enumerate(factors):
        factor = np.asarray(factor)
        require(factor.shape == (tensor_shape[m], rank),
                f"factor {m} has shape {factor.shape}, expected "
                f"({tensor_shape[m]}, {rank})")
    return rank


def mttkrp_coo_reference(tensor: COOTensor, factors: FactorList,
                         mode: int) -> np.ndarray:
    """Oracle MTTKRP: per-non-zero Python loop.  Tests only."""
    mode = check_mode(mode, tensor.nmodes)
    rank = _check_factors(tensor.shape, factors)
    out = np.zeros((tensor.shape[mode], rank), dtype=VALUE_DTYPE)
    others = [m for m in range(tensor.nmodes) if m != mode]
    for p in range(tensor.nnz):
        row = np.full(rank, tensor.vals[p], dtype=VALUE_DTYPE)
        for m in others:
            row = row * np.asarray(factors[m])[tensor.coords[m, p]]
        out[tensor.coords[mode, p]] += row
    return out


def mttkrp_coo(tensor: COOTensor, factors: FactorList,
               mode: int) -> np.ndarray:
    """Vectorized COO MTTKRP.

    ``K[i, :] = sum_{p: coords[mode, p] == i} vals[p] *
    prod_{m != mode} factors[m][coords[m, p], :]``
    """
    mode = check_mode(mode, tensor.nmodes)
    rank = _check_factors(tensor.shape, factors)
    out = np.zeros((tensor.shape[mode], rank), dtype=VALUE_DTYPE)
    if tensor.nnz == 0:
        return out
    rows = khatri_rao_rows(factors, mode, tensor.coords)
    rows *= tensor.vals[:, None]
    return scatter_add_rows(out, tensor.coords[mode], rows)
