"""Row scatter/segment primitives shared by the MTTKRP kernels.

``np.add.at`` is correct but an order of magnitude slower than a
sort + ``reduceat`` pipeline for row blocks; these helpers centralize the
fast path so each kernel stays readable.
"""

from __future__ import annotations

import numpy as np

from ..types import INDEX_DTYPE
from ..validation import require


def segment_sums(rows: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Sum contiguous row segments: ``out[s] = rows[starts[s]:starts[s+1]].sum(0)``.

    ``starts`` must be strictly increasing with ``starts[0] == 0``; the last
    segment extends to the end.  Thin wrapper over ``np.add.reduceat`` kept
    for symmetry and for the empty-input edge case reduceat rejects.
    """
    if rows.shape[0] == 0:
        return np.zeros((0,) + rows.shape[1:], dtype=rows.dtype)
    return np.add.reduceat(rows, starts, axis=0)


def scatter_add_rows(out: np.ndarray, index: np.ndarray,
                     rows: np.ndarray) -> np.ndarray:
    """``out[index[p], :] += rows[p, :]`` with duplicate indices summed.

    Implemented as stable argsort + grouped ``reduceat`` + one sliced add —
    all O(n log n) vectorized work, no Python-level loop over ``n``.
    Mutates and returns *out*.
    """
    index = np.asarray(index, dtype=INDEX_DTYPE)
    require(index.shape[0] == rows.shape[0], "index and rows must align")
    n = index.shape[0]
    if n == 0:
        return out
    order = np.argsort(index, kind="stable")
    sorted_index = index[order]
    sorted_rows = rows[order]
    boundaries = np.flatnonzero(
        np.r_[True, sorted_index[1:] != sorted_index[:-1]])
    sums = np.add.reduceat(sorted_rows, boundaries, axis=0)
    out[sorted_index[boundaries]] += sums
    return out


def group_starts(sorted_index: np.ndarray) -> np.ndarray:
    """Start offsets of each run of equal values in a sorted index array."""
    if sorted_index.shape[0] == 0:
        return np.zeros(0, dtype=INDEX_DTYPE)
    return np.flatnonzero(
        np.r_[True, sorted_index[1:] != sorted_index[:-1]]
    ).astype(INDEX_DTYPE)
