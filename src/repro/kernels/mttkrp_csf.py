"""MTTKRP on CSF tensors (paper Algorithm 3, generalized to any order).

Three kernels, selected by where the target mode sits in the CSF's mode
order:

* **root** — the target mode is the tree root.  A single bottom-up sweep:
  scale leaf factor rows by the values, segment-sum into fibers, multiply
  by the fiber-level factor rows, segment-sum into slices, write the output
  rows.  No scatter conflicts; this is the kernel the paper parallelizes
  over slices.
* **leaf** — the target mode is the deepest level.  Top-down propagation of
  the ancestor row products, then a scatter-add keyed on the leaf ids.
* **internal** — anything in between: an upward sweep to the target level
  meets a downward sweep; the per-node products are scattered on the
  target-level ids.

All three vectorize the tree traversals with ``repeat`` (downward) and
``reduceat`` (upward) over the level pointer arrays.

Each kernel has two execution paths:

* the **monolithic** path (``tiling=None``) — one sweep over the whole
  tree, allocating its temporaries per call; kept as the simple reference
  implementation and for one-off calls;
* the **slab-tiled** path — the tree is partitioned into nnz-balanced
  root-slice slabs (:class:`repro.tensor.tiling.CSFTiling`) executed via
  :func:`repro.parallel.threadpool.parallel_for`, with every temporary
  drawn from a reusable :class:`repro.kernels.workspace.KernelWorkspace`
  (paper Section IV-A slice parallelism).  Root slabs write disjoint
  output rows directly; leaf/internal slabs write their per-node products
  into disjoint ranges of one shared buffer which a single deterministic
  scatter then reduces — so results are **bit-identical** for any slab
  count and any thread count, like blocked ADMM.
"""

from __future__ import annotations

import numpy as np

from ..observability import record_executor_batches
from ..parallel.executor import ExecutorBase, resolve_executor
from ..parallel.threadpool import effective_threads, parallel_for
from ..tensor.csf import CSFTensor
from ..tensor.tiling import CSFSlab, CSFTiling
from ..types import VALUE_DTYPE, FactorList
from ..validation import check_mode, require
from .scatter import scatter_add_rows, segment_sums
from .workspace import KernelWorkspace

#: Worker entry point for offloaded slab batches (resolved by name
#: inside the pool workers; see :mod:`repro.parallel.shm_worker`).
_SLAB_TASK = "repro.parallel.shm_worker:run_slab_batch"


def _rank_of(factors: FactorList) -> int:
    return int(np.asarray(factors[0]).shape[1])


def _factor(factors: FactorList, mode: int) -> np.ndarray:
    """The mode's factor as a float64 array ``np.take`` can gather from."""
    return np.asarray(factors[mode], dtype=VALUE_DTYPE)


# ----------------------------------------------------------------------
# Monolithic sweeps (reference path, allocates per call)
# ----------------------------------------------------------------------
def _upward_to_level(csf: CSFTensor, factors: FactorList,
                     stop_level: int) -> np.ndarray:
    """Aggregate value-scaled factor rows from the leaves up to *stop_level*.

    Returns one row per node at ``stop_level``; the product **excludes**
    the factor of ``stop_level`` itself.
    """
    order = csf.mode_order
    nmodes = csf.nmodes
    acc = csf.vals[:, None] * np.asarray(
        factors[order[nmodes - 1]])[csf.fids[nmodes - 1]]
    for level in range(nmodes - 2, stop_level - 1, -1):
        acc = segment_sums(acc, csf.fptr[level][:-1])
        if level != stop_level:
            acc = acc * np.asarray(factors[order[level]])[csf.fids[level]]
    return acc


def _downward_to_level(csf: CSFTensor, factors: FactorList,
                       stop_level: int) -> np.ndarray:
    """Propagate ancestor row products from the roots down to *stop_level*.

    Returns one row per node at ``stop_level``; the product **excludes**
    the factor of ``stop_level`` itself.
    """
    order = csf.mode_order
    acc = np.asarray(factors[order[0]])[csf.fids[0]]
    for level in range(1, stop_level + 1):
        acc = np.repeat(acc, np.diff(csf.fptr[level - 1]), axis=0)
        if level != stop_level:
            acc = acc * np.asarray(factors[order[level]])[csf.fids[level]]
    return acc


# ----------------------------------------------------------------------
# Slab sweeps (workspace-backed, allocation-free after warm-up)
# ----------------------------------------------------------------------
def _slab_upward(slab: CSFSlab, factors: FactorList, stop_level: int,
                 ws: KernelWorkspace, rank: int) -> np.ndarray:
    """Workspace variant of :func:`_upward_to_level` over one slab.

    Bit-identical to the monolithic sweep restricted to the slab's node
    range: segments never cross slab boundaries (slabs split only at
    root-slice boundaries), and every op is the same elementwise
    multiply / left-to-right ``reduceat`` on the same operands.
    """
    tree = slab.tree
    order = tree.mode_order
    nmodes = tree.nmodes
    sid = slab.index
    acc = ws.buf(("up", sid, nmodes - 1), (tree.nnz, rank))
    np.take(_factor(factors, order[nmodes - 1]), tree.fids[nmodes - 1],
            axis=0, out=acc)
    np.multiply(acc, tree.vals[:, None], out=acc)
    for level in range(nmodes - 2, stop_level - 1, -1):
        seg = ws.buf(("up", sid, level), (tree.nnodes(level), rank))
        np.add.reduceat(acc, tree.fptr[level][:-1], axis=0, out=seg)
        acc = seg
        if level != stop_level:
            rows = ws.buf(("upg", sid, level),
                          (tree.nnodes(level), rank))
            np.take(_factor(factors, order[level]), tree.fids[level],
                    axis=0, out=rows)
            np.multiply(acc, rows, out=acc)
    return acc


def _slab_downward(slab: CSFSlab, factors: FactorList, stop_level: int,
                   ws: KernelWorkspace, rank: int) -> np.ndarray:
    """Workspace variant of :func:`_downward_to_level` over one slab.

    The per-call ``np.repeat(acc, np.diff(fptr))`` expansion becomes a
    gather through the cached expansion-index map — same rows, no index
    recomputation, no fresh output array.
    """
    tree = slab.tree
    order = tree.mode_order
    sid = slab.index
    acc = ws.buf(("down", sid, 0), (tree.nnodes(0), rank))
    np.take(_factor(factors, order[0]), tree.fids[0], axis=0, out=acc)
    for level in range(1, stop_level + 1):
        expand = ws.expand_indices(sid, level - 1)
        nxt = ws.buf(("down", sid, level), (tree.nnodes(level), rank))
        np.take(acc, expand, axis=0, out=nxt)
        acc = nxt
        if level != stop_level:
            rows = ws.buf(("downg", sid, level),
                          (tree.nnodes(level), rank))
            np.take(_factor(factors, order[level]), tree.fids[level],
                    axis=0, out=rows)
            np.multiply(acc, rows, out=acc)
    return acc


def _scatter_add_static(out: np.ndarray, rows: np.ndarray,
                        plan: tuple[np.ndarray, np.ndarray, np.ndarray],
                        ws: KernelWorkspace, tag: object) -> np.ndarray:
    """Pooled-buffer replay of :func:`scatter_add_rows` on a static index."""
    order, starts, targets = plan
    srt = ws.buf((tag, "sorted"), rows.shape)
    np.take(rows, order, axis=0, out=srt)
    sums = ws.buf((tag, "sums"), (starts.shape[0], rows.shape[1]))
    np.add.reduceat(srt, starts, axis=0, out=sums)
    out[targets] += sums
    return out


def _workspace_for(tiling: CSFTiling,
                   workspace: KernelWorkspace | None) -> KernelWorkspace:
    if workspace is not None:
        require(workspace.tiling is tiling,
                "workspace was built for a different tiling")
        return workspace
    return KernelWorkspace(tiling)


# ----------------------------------------------------------------------
# Process-executor offload (shared-memory slab batches)
# ----------------------------------------------------------------------
def _offloads(executor: ExecutorBase | None,
              ws: KernelWorkspace) -> bool:
    """True when slabs should run in pool workers instead of threads."""
    return (executor is not None and executor.offloads_slabs
            and ws.arena is not None)


def _run_shared_slabs(executor: ExecutorBase, ws: KernelWorkspace,
                      csf: CSFTensor, factors: FactorList, kind: str,
                      level: int, target_key: object, rank: int,
                      threads: int | None) -> None:
    """Dispatch one tiled sweep as shm slab batches on the process pool.

    The task payloads carry only :class:`~repro.parallel.shm.
    ShmArrayHandle` records and slab descriptors — no arrays.  The tree
    registration and the batch split are cached (static pattern); the
    per-call work is one factor refresh (``memcpy`` into the shared
    factor blocks) plus ``n_batches`` small pickles.  Workers execute
    the identical sweep code on identical bytes and write disjoint,
    fully-overwritten ranges of the shared target — see
    :mod:`repro.parallel.shm_worker` for the bit-identity argument.
    """
    arena = ws.arena
    tree_handles = ws.shared_tree_handles()
    factor_handles = [
        arena.update(("factor", m),
                     np.asarray(factors[m], dtype=VALUE_DTYPE))
        for m in range(csf.nmodes)]
    target_handle = ws.shared_handle(target_key)
    batches = ws.shared_batches(effective_threads(threads))
    common = {
        "kind": kind,
        "level": level,
        "rank": rank,
        "shape": tuple(csf.shape),
        "mode_order": tuple(csf.mode_order),
        "tree": tree_handles,
        "factors": factor_handles,
        "target": target_handle,
    }
    payloads = [dict(common, slabs=batch) for batch in batches]
    stats = executor.submit_slab_batches(_SLAB_TASK, payloads,
                                         workers=len(payloads))
    record_executor_batches(executor.name, kind, stats)


# ----------------------------------------------------------------------
# The three kernels
# ----------------------------------------------------------------------
def mttkrp_csf_root(csf: CSFTensor, factors: FactorList,
                    tiling: CSFTiling | None = None,
                    workspace: KernelWorkspace | None = None,
                    threads: int | None = None,
                    executor: ExecutorBase | None = None) -> np.ndarray:
    """MTTKRP for the CSF's root mode (paper Algorithm 3).

    With a *tiling*, slabs run in parallel and write disjoint output rows
    (root ids are unique and ascending across slabs), so no reduction is
    needed and the result is bit-identical for any slab/thread count —
    and for any *executor* (thread pool or shared-memory process pool).
    The returned array is owned by *workspace* when one is given — valid
    until the next root-mode call on the same workspace.
    """
    rank = _rank_of(factors)
    root_mode = csf.mode_order[0]
    if tiling is None:
        out = np.zeros((csf.shape[root_mode], rank), dtype=VALUE_DTYPE)
        if csf.nnz == 0:
            return out
        require(csf.nmodes >= 2, "MTTKRP needs at least two modes")
        slice_rows = _upward_to_level(csf, factors, 0)
        out[csf.fids[0]] = slice_rows
        return out

    ws = _workspace_for(tiling, workspace)
    out = ws.buf(("out", root_mode), (csf.shape[root_mode], rank))
    out.fill(0.0)
    if csf.nnz == 0:
        return out
    require(csf.nmodes >= 2, "MTTKRP needs at least two modes")

    if _offloads(executor, ws):
        _run_shared_slabs(executor, ws, csf, factors, "root", 0,
                          ("out", root_mode), rank, threads)
        return out

    def run_slab(slab: CSFSlab) -> None:
        rows = _slab_upward(slab, factors, 0, ws, rank)
        out[slab.tree.fids[0]] = rows

    parallel_for(run_slab, tiling.slabs, threads=threads)
    return out


def mttkrp_csf_leaf(csf: CSFTensor, factors: FactorList,
                    tiling: CSFTiling | None = None,
                    workspace: KernelWorkspace | None = None,
                    threads: int | None = None,
                    executor: ExecutorBase | None = None) -> np.ndarray:
    """MTTKRP for the CSF's deepest mode.

    With a *tiling*, each slab propagates its ancestor products downward
    in parallel and writes the value-scaled leaf rows into its disjoint
    range of one shared product buffer; a single deterministic scatter
    (static plan, stable order, always in the calling process) then
    reduces — bit-identical to the monolithic kernel for any
    slab/thread count and any executor.
    """
    rank = _rank_of(factors)
    leaf_level = csf.nmodes - 1
    leaf_mode = csf.mode_order[leaf_level]
    if tiling is None:
        out = np.zeros((csf.shape[leaf_mode], rank), dtype=VALUE_DTYPE)
        if csf.nnz == 0:
            return out
        require(csf.nmodes >= 2, "MTTKRP needs at least two modes")
        prod = _downward_to_level(csf, factors, leaf_level)
        prod = prod * csf.vals[:, None]
        return scatter_add_rows(out, csf.fids[leaf_level], prod)

    ws = _workspace_for(tiling, workspace)
    out = ws.buf(("out", leaf_mode), (csf.shape[leaf_mode], rank))
    out.fill(0.0)
    if csf.nnz == 0:
        return out
    require(csf.nmodes >= 2, "MTTKRP needs at least two modes")
    prod = ws.buf(("prod", leaf_level), (csf.nnz, rank))

    if _offloads(executor, ws):
        _run_shared_slabs(executor, ws, csf, factors, "leaf", leaf_level,
                          ("prod", leaf_level), rank, threads)
    else:
        def run_slab(slab: CSFSlab) -> None:
            rows = _slab_downward(slab, factors, leaf_level, ws, rank)
            lo, hi = slab.leaf_range
            np.multiply(rows, slab.tree.vals[:, None], out=prod[lo:hi])

        parallel_for(run_slab, tiling.slabs, threads=threads)
    plan = ws.scatter_plan(("scatter", leaf_level), csf.fids[leaf_level])
    return _scatter_add_static(out, prod, plan, ws, ("sct", leaf_level))


def mttkrp_csf_internal(csf: CSFTensor, factors: FactorList, level: int,
                        tiling: CSFTiling | None = None,
                        workspace: KernelWorkspace | None = None,
                        threads: int | None = None,
                        executor: ExecutorBase | None = None
                        ) -> np.ndarray:
    """MTTKRP for the mode at an internal CSF *level* (0 < level < N-1).

    The tiled path runs each slab's meeting upward/downward sweeps in
    parallel (per-node products land in disjoint ranges of a shared
    buffer, since node ranges at every level tile the tree) and finishes
    with one deterministic scatter — bit-identical for any slab/thread
    count and any executor.
    """
    require(0 < level < csf.nmodes - 1,
            f"level {level} is not internal for {csf.nmodes} modes")
    rank = _rank_of(factors)
    target_mode = csf.mode_order[level]
    if tiling is None:
        out = np.zeros((csf.shape[target_mode], rank), dtype=VALUE_DTYPE)
        if csf.nnz == 0:
            return out
        upward = _upward_to_level(csf, factors, level)
        downward = _downward_to_level(csf, factors, level)
        return scatter_add_rows(out, csf.fids[level], upward * downward)

    ws = _workspace_for(tiling, workspace)
    out = ws.buf(("out", target_mode), (csf.shape[target_mode], rank))
    out.fill(0.0)
    if csf.nnz == 0:
        return out
    nodeprod = ws.buf(("nodeprod", level), (csf.nnodes(level), rank))

    if _offloads(executor, ws):
        _run_shared_slabs(executor, ws, csf, factors, "internal", level,
                          ("nodeprod", level), rank, threads)
    else:
        def run_slab(slab: CSFSlab) -> None:
            upward = _slab_upward(slab, factors, level, ws, rank)
            downward = _slab_downward(slab, factors, level, ws, rank)
            lo, hi = slab.node_ranges[level]
            np.multiply(upward, downward, out=nodeprod[lo:hi])

        parallel_for(run_slab, tiling.slabs, threads=threads)
    plan = ws.scatter_plan(("scatter", level), csf.fids[level])
    return _scatter_add_static(out, nodeprod, plan, ws, ("sct", level))


def mttkrp_csf(csf: CSFTensor, factors: FactorList, mode: int,
               tiling: CSFTiling | None = None,
               workspace: KernelWorkspace | None = None,
               threads: int | None = None,
               executor: ExecutorBase | None = None) -> np.ndarray:
    """MTTKRP for any *mode*, picking the kernel by the mode's CSF level."""
    mode = check_mode(mode, csf.nmodes)
    level = csf.mode_order.index(mode)
    if level == 0:
        return mttkrp_csf_root(csf, factors, tiling=tiling,
                               workspace=workspace, threads=threads,
                               executor=executor)
    if level == csf.nmodes - 1:
        return mttkrp_csf_leaf(csf, factors, tiling=tiling,
                               workspace=workspace, threads=threads,
                               executor=executor)
    return mttkrp_csf_internal(csf, factors, level, tiling=tiling,
                               workspace=workspace, threads=threads,
                               executor=executor)
