"""MTTKRP on CSF tensors (paper Algorithm 3, generalized to any order).

Three kernels, selected by where the target mode sits in the CSF's mode
order:

* **root** — the target mode is the tree root.  A single bottom-up sweep:
  scale leaf factor rows by the values, segment-sum into fibers, multiply
  by the fiber-level factor rows, segment-sum into slices, write the output
  rows.  No scatter conflicts; this is the kernel the paper parallelizes
  over slices.
* **leaf** — the target mode is the deepest level.  Top-down propagation of
  the ancestor row products, then a scatter-add keyed on the leaf ids.
* **internal** — anything in between: an upward sweep to the target level
  meets a downward sweep; the per-node products are scattered on the
  target-level ids.

All three vectorize the tree traversals with ``repeat`` (downward) and
``reduceat`` (upward) over the level pointer arrays.
"""

from __future__ import annotations

import numpy as np

from ..tensor.csf import CSFTensor
from ..types import VALUE_DTYPE, FactorList
from ..validation import check_mode, require
from .scatter import scatter_add_rows, segment_sums


def _rank_of(factors: FactorList) -> int:
    return int(np.asarray(factors[0]).shape[1])


def _upward_to_level(csf: CSFTensor, factors: FactorList,
                     stop_level: int) -> np.ndarray:
    """Aggregate value-scaled factor rows from the leaves up to *stop_level*.

    Returns one row per node at ``stop_level``; the product **excludes**
    the factor of ``stop_level`` itself.
    """
    order = csf.mode_order
    nmodes = csf.nmodes
    acc = csf.vals[:, None] * np.asarray(
        factors[order[nmodes - 1]])[csf.fids[nmodes - 1]]
    for level in range(nmodes - 2, stop_level - 1, -1):
        acc = segment_sums(acc, csf.fptr[level][:-1])
        if level != stop_level:
            acc = acc * np.asarray(factors[order[level]])[csf.fids[level]]
    return acc


def _downward_to_level(csf: CSFTensor, factors: FactorList,
                       stop_level: int) -> np.ndarray:
    """Propagate ancestor row products from the roots down to *stop_level*.

    Returns one row per node at ``stop_level``; the product **excludes**
    the factor of ``stop_level`` itself.
    """
    order = csf.mode_order
    acc = np.asarray(factors[order[0]])[csf.fids[0]]
    for level in range(1, stop_level + 1):
        acc = np.repeat(acc, np.diff(csf.fptr[level - 1]), axis=0)
        if level != stop_level:
            acc = acc * np.asarray(factors[order[level]])[csf.fids[level]]
    return acc


def mttkrp_csf_root(csf: CSFTensor, factors: FactorList) -> np.ndarray:
    """MTTKRP for the CSF's root mode (paper Algorithm 3)."""
    rank = _rank_of(factors)
    root_mode = csf.mode_order[0]
    out = np.zeros((csf.shape[root_mode], rank), dtype=VALUE_DTYPE)
    if csf.nnz == 0:
        return out
    require(csf.nmodes >= 2, "MTTKRP needs at least two modes")
    slice_rows = _upward_to_level(csf, factors, 0)
    out[csf.fids[0]] = slice_rows
    return out


def mttkrp_csf_leaf(csf: CSFTensor, factors: FactorList) -> np.ndarray:
    """MTTKRP for the CSF's deepest mode."""
    rank = _rank_of(factors)
    leaf_level = csf.nmodes - 1
    leaf_mode = csf.mode_order[leaf_level]
    out = np.zeros((csf.shape[leaf_mode], rank), dtype=VALUE_DTYPE)
    if csf.nnz == 0:
        return out
    require(csf.nmodes >= 2, "MTTKRP needs at least two modes")
    prod = _downward_to_level(csf, factors, leaf_level)
    prod = prod * csf.vals[:, None]
    return scatter_add_rows(out, csf.fids[leaf_level], prod)


def mttkrp_csf_internal(csf: CSFTensor, factors: FactorList,
                        level: int) -> np.ndarray:
    """MTTKRP for the mode at an internal CSF *level* (0 < level < N-1)."""
    require(0 < level < csf.nmodes - 1,
            f"level {level} is not internal for {csf.nmodes} modes")
    rank = _rank_of(factors)
    target_mode = csf.mode_order[level]
    out = np.zeros((csf.shape[target_mode], rank), dtype=VALUE_DTYPE)
    if csf.nnz == 0:
        return out
    upward = _upward_to_level(csf, factors, level)
    downward = _downward_to_level(csf, factors, level)
    return scatter_add_rows(out, csf.fids[level], upward * downward)


def mttkrp_csf(csf: CSFTensor, factors: FactorList, mode: int) -> np.ndarray:
    """MTTKRP for any *mode*, picking the kernel by the mode's CSF level."""
    mode = check_mode(mode, csf.nmodes)
    level = csf.mode_order.index(mode)
    if level == 0:
        return mttkrp_csf_root(csf, factors)
    if level == csf.nmodes - 1:
        return mttkrp_csf_leaf(csf, factors)
    return mttkrp_csf_internal(csf, factors, level)
