"""MTTKRP with sparse factor matrices (paper Section IV-C).

Only the **leaf-level** factor of the CSF traversal is accessed once per
non-zero; the factors above it are touched once per fiber or slice.  The
paper therefore sparsifies only that deep factor ("we only represent C in
CSR form and only need to modify line 9 of Algorithm 3").  The kernel here
mirrors that: the leaf gather is routed through a pluggable factor
representation — dense ndarray, :class:`~repro.sparse.csr.CSRMatrix`, or
:class:`~repro.sparse.hybrid.HybridFactor` — and the rest of the sweep is
unchanged.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from ..sparse.csr import CSRMatrix
from ..sparse.hybrid import HybridFactor
from ..tensor.csf import CSFTensor
from ..types import INDEX_DTYPE, VALUE_DTYPE, FactorList
from ..validation import require
from .scatter import segment_sums

#: Anything usable as the deep-mode factor in the sparse MTTKRP kernel.
FactorRepresentation = Union[np.ndarray, CSRMatrix, HybridFactor]


def gather_scale(rep: FactorRepresentation, row_index: np.ndarray,
                 scale: np.ndarray) -> np.ndarray:
    """``out[p, :] = scale[p] * rep[row_index[p], :]`` for any representation."""
    if isinstance(rep, (CSRMatrix, HybridFactor)):
        return rep.gather_scale_rows(row_index, scale)
    rep = np.asarray(rep, dtype=VALUE_DTYPE)
    return rep[row_index] * scale[:, None]


def representation_nnz(rep: FactorRepresentation,
                       row_index: np.ndarray) -> int:
    """Stored entries a leaf gather touches (drives the cost model)."""
    if isinstance(rep, (CSRMatrix, HybridFactor)):
        return rep.gathered_nnz(row_index)
    rep = np.asarray(rep)
    return int(row_index.shape[0]) * int(rep.shape[1])


def representation_name(rep: FactorRepresentation) -> str:
    """Short name used in traces and benchmark tables."""
    if isinstance(rep, HybridFactor):
        return "csr-h"
    if isinstance(rep, CSRMatrix):
        return "csr"
    return "dense"


def leaf_aggregator(csf: CSFTensor) -> sp.csr_matrix:
    """The fiber-by-leaf-mode aggregation matrix ``S`` of a CSF tree.

    ``S[f, k] = sum of values of fiber f's non-zeros with leaf index k``,
    shape ``(nfibers, K_leaf)``.  The leaf stage of root-mode MTTKRP is
    then a single sparse product ``Z_fib = S @ C`` — whose cost scales
    with the *stored* entries of ``C``, which is exactly the saving the
    paper's sparse-factor kernels harvest.  The tensor's pattern is static,
    so ``S`` is built once per tree and cached by the engine.
    """
    nmodes = csf.nmodes
    if nmodes == 1:
        raise ValueError("aggregator needs at least two modes")
    fiber_sizes = np.diff(csf.fptr[nmodes - 2])
    rows = np.repeat(
        np.arange(fiber_sizes.shape[0], dtype=INDEX_DTYPE), fiber_sizes)
    leaf_mode = csf.mode_order[nmodes - 1]
    mat = sp.csr_matrix(
        (csf.vals, (rows, csf.fids[nmodes - 1])),
        shape=(fiber_sizes.shape[0], csf.shape[leaf_mode]))
    return mat


def _fiber_rows_sparse(csf: CSFTensor, leaf_rep: FactorRepresentation,
                       aggregator: sp.csr_matrix) -> np.ndarray:
    """Per-fiber accumulations through a compressed deep factor."""
    if isinstance(leaf_rep, HybridFactor):
        parts = []
        if leaf_rep.n_dense_cols:
            # Sparse-times-dense: SciPy's CSR matvec block, very efficient.
            parts.append(aggregator @ leaf_rep.dense_part)
        if leaf_rep.csr_part.shape[1]:
            parts.append(
                np.asarray((aggregator @ leaf_rep.csr_part.to_scipy())
                           .todense()))
        permuted = (np.concatenate(parts, axis=1) if len(parts) > 1
                    else parts[0])
        return np.ascontiguousarray(permuted[:, leaf_rep.inv_perm])
    # Plain CSR: one SpGEMM whose cost follows the stored non-zeros.
    return np.asarray((aggregator @ leaf_rep.to_scipy()).todense())


def mttkrp_csf_root_repr(csf: CSFTensor, factors: FactorList,
                         leaf_rep: FactorRepresentation | None = None,
                         aggregator: sp.csr_matrix | None = None
                         ) -> np.ndarray:
    """Root-mode MTTKRP with a pluggable deep-factor representation.

    Identical in output to :func:`repro.kernels.mttkrp_csf.mttkrp_csf_root`
    for any representation; with a CSR/hybrid deep factor the leaf stage
    runs as a sparse product against the (cached) :func:`leaf_aggregator`,
    so its work scales with the factor's stored entries instead of
    ``nnz * F``.
    """
    rank = int(np.asarray(factors[0]).shape[1])
    order = csf.mode_order
    nmodes = csf.nmodes
    out = np.zeros((csf.shape[order[0]], rank), dtype=VALUE_DTYPE)
    if csf.nnz == 0:
        return out
    require(nmodes >= 2, "MTTKRP needs at least two modes")

    if leaf_rep is None or isinstance(leaf_rep, np.ndarray):
        dense = (np.asarray(factors[order[nmodes - 1]])
                 if leaf_rep is None else leaf_rep)
        acc = dense[csf.fids[nmodes - 1]] * csf.vals[:, None]
        acc = segment_sums(acc, csf.fptr[nmodes - 2][:-1])
    else:
        if aggregator is None:
            aggregator = leaf_aggregator(csf)
        acc = _fiber_rows_sparse(csf, leaf_rep, aggregator)

    # `acc` now holds one row per fiber (level N-2 node); continue the
    # standard upward sweep.
    for level in range(nmodes - 2, -1, -1):
        if level != nmodes - 2:
            acc = segment_sums(acc, csf.fptr[level][:-1])
        if level != 0:
            acc = acc * np.asarray(factors[order[level]])[csf.fids[level]]
    out[csf.fids[0]] = acc
    return out
