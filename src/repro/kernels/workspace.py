"""Reusable kernel workspaces for the tiled MTTKRP sweeps.

The MTTKRP kernels are called once per mode per outer iteration over a
tensor whose sparsity pattern never changes, yet the original sweeps
re-allocated every temporary on every call: the value-scaled accumulator
at each level, the ``np.repeat`` expansions, the ``np.diff(fptr)`` child
counts, and the output matrix itself.  A :class:`KernelWorkspace` makes
all of that state persistent per (tree, slab):

* **pattern precomputations** — per-(slab, level) child counts and the
  leaf-ward *expansion index* arrays (the gather map equivalent to
  ``np.repeat(..., counts)``) are computed once and cached forever;
* **pooled buffers** — every array a sweep writes is drawn from a keyed
  :class:`BufferPool` and filled with ``out=`` ufunc calls, so after the
  first (warm-up) call a static-pattern MTTKRP performs **zero** new
  large-array allocations;
* **allocation accounting** — the pool counts allocations, reuse hits,
  and bytes, which :class:`repro.kernels.dispatch.MTTKRPCallStats`
  surfaces per call for the benchmark harness and the machine model.

Thread-safety: slabs executed in parallel only ever touch buffers keyed
by their own slab index (plus disjoint ranges of shared output/product
buffers), and the pool takes a lock around cache misses, so concurrent
warm-up is safe.
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

from ..parallel.partition import balanced_chunks
from ..tensor.tiling import CSFTiling
from ..types import INDEX_DTYPE, VALUE_DTYPE


class BufferPool:
    """Keyed pool of reusable ndarrays with allocation accounting.

    ``take(key, shape)`` returns the cached buffer for *key* when its
    shape/dtype still match (a *hit*) and allocates a replacement
    otherwise.  Buffer contents are unspecified on return — callers
    overwrite them with ``out=`` writes (or ``fill``).

    An optional *allocator* ``(key, shape, dtype) -> ndarray | None``
    intercepts cache misses; returning ``None`` falls back to
    ``np.empty``.  The shm-backed workspaces use this to place the
    buffers worker processes must see into shared segments without the
    kernels knowing the difference.
    """

    def __init__(self, allocator: Callable | None = None) -> None:
        self._buffers: dict[object, np.ndarray] = {}
        self._allocator = allocator
        self._lock = threading.Lock()
        self.allocations = 0
        self.hits = 0
        self.bytes_allocated = 0

    def take(self, key: object, shape: tuple[int, ...],
             dtype: np.dtype = VALUE_DTYPE) -> np.ndarray:
        buf = self._buffers.get(key)
        if buf is not None and buf.shape == shape and buf.dtype == dtype:
            self.hits += 1
            return buf
        with self._lock:
            buf = self._buffers.get(key)
            if buf is not None and buf.shape == shape \
                    and buf.dtype == dtype:
                self.hits += 1
                return buf
            buf = None
            if self._allocator is not None:
                buf = self._allocator(key, shape, dtype)
            if buf is None:
                buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
            self.allocations += 1
            self.bytes_allocated += buf.nbytes
        return buf


class KernelWorkspace:
    """Per-tree MTTKRP scratch: a tiling plus everything reusable across calls.

    One workspace serves every target mode of its tree (buffer keys are
    tagged with the mode where shapes differ), so the SPLATT ``ONEMODE``
    allocation shares a single workspace across all modes while
    ``ALLMODE`` holds one per tree.
    """

    #: First elements of buffer keys that worker processes must be able
    #: to see: MTTKRP outputs and the shared per-node product buffers.
    SHARED_KEY_HEADS = ("out", "prod", "nodeprod")

    def __init__(self, tiling: CSFTiling, shared_arena=None) -> None:
        self.tiling = tiling
        #: :class:`repro.parallel.shm.ShmArena` when this workspace
        #: serves the process executor; ``None`` for in-process
        #: execution.  Shared buffers and the tree's level arrays are
        #: registered there so slab batches can reference them by
        #: handle.
        self.arena = shared_arena
        #: Namespace that keeps this workspace's shared keys from
        #: colliding with sibling trees in the same engine arena.
        self.arena_ns = tiling.csf.mode_order[0] if tiling.csf.nmodes \
            else 0
        self.pool = BufferPool(
            allocator=self._shared_alloc if shared_arena is not None
            else None)
        self._child_counts: dict[tuple[int, int], np.ndarray] = {}
        self._expand_indices: dict[tuple[int, int], np.ndarray] = {}
        self._scatter_plans: dict[object, tuple[np.ndarray, np.ndarray,
                                                np.ndarray]] = {}
        self._shared_batches: dict[int, list[list]] = {}
        # RLock: expand_indices() takes the lock and may call
        # child_counts(), which locks again on a cold cache.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Shared-memory plane (process executor only)
    # ------------------------------------------------------------------
    def _shared_alloc(self, key: object, shape: tuple[int, ...],
                      dtype: np.dtype):
        """Pool allocator routing worker-visible buffers into the arena."""
        if isinstance(key, tuple) and key \
                and key[0] in self.SHARED_KEY_HEADS:
            return self.arena.allocate(("buf", self.arena_ns, key),
                                       tuple(shape), dtype)
        return None

    def shared_handle(self, key: object):
        """The shm handle of a worker-visible pooled buffer."""
        return self.arena.handle(("buf", self.arena_ns, key))

    def shared_tree_handles(self) -> dict:
        """Register (once) and return the tree's level-array handles."""
        return self.arena.put_group(("tree", self.arena_ns),
                                    self.tiling.csf.buffers())

    def shared_batches(self, n_batches: int) -> list[list]:
        """Slab descriptors grouped into *n_batches* nnz-balanced batches.

        Each descriptor is ``(slab_index, node_ranges)`` — everything a
        worker needs (beyond the shared arrays) to rebuild the slab.
        Cached per batch count: the tiling is static.
        """
        n_batches = max(1, min(int(n_batches), self.tiling.slab_count))
        cached = self._shared_batches.get(n_batches)
        if cached is None:
            with self._lock:
                cached = self._shared_batches.get(n_batches)
                if cached is None:
                    chunks = balanced_chunks(self.tiling.slab_nnz,
                                             n_batches)
                    slabs = self.tiling.slabs
                    cached = [
                        [(s.index, s.node_ranges)
                         for s in slabs[chunk.start:chunk.stop]]
                        for chunk in chunks]
                    cached = [batch for batch in cached if batch]
                    self._shared_batches[n_batches] = cached
        return cached

    # ------------------------------------------------------------------
    # Static-pattern precomputations (cached forever — the pattern never
    # changes; this removes the per-call np.diff/np.repeat index work).
    # ------------------------------------------------------------------
    def child_counts(self, slab_index: int, level: int) -> np.ndarray:
        """Children per node of slab *slab_index* at *level* (< leaves)."""
        key = (slab_index, level)
        counts = self._child_counts.get(key)
        if counts is None:
            with self._lock:
                counts = self._child_counts.get(key)
                if counts is None:
                    tree = self.tiling.slabs[slab_index].tree
                    counts = np.diff(tree.fptr[level])
                    self._child_counts[key] = counts
        return counts

    def expand_indices(self, slab_index: int, level: int) -> np.ndarray:
        """Parent-row gather map expanding *level* nodes to their children.

        ``arr[expand_indices(s, l)]`` equals
        ``np.repeat(arr, child_counts(s, l), axis=0)`` — but as a gather
        it supports ``np.take(..., out=)`` into a pooled buffer.
        """
        key = (slab_index, level)
        idx = self._expand_indices.get(key)
        if idx is None:
            with self._lock:
                idx = self._expand_indices.get(key)
                if idx is None:
                    counts = self.child_counts(slab_index, level)
                    idx = np.repeat(
                        np.arange(counts.shape[0], dtype=INDEX_DTYPE),
                        counts)
                    self._expand_indices[key] = idx
        return idx

    def scatter_plan(self, key: object, index: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Precomputed ``(order, group_starts, targets)`` for a static scatter.

        The scatter-add of the leaf/internal kernels sorts a static id
        array on every call; since the ids never change, the stable sort
        permutation, the group boundaries, and the unique target rows are
        computed once and replayed.  Bit-identical to
        :func:`repro.kernels.scatter.scatter_add_rows` by construction
        (same stable order, same ``reduceat`` groups).
        """
        plan = self._scatter_plans.get(key)
        if plan is None:
            with self._lock:
                plan = self._scatter_plans.get(key)
                if plan is None:
                    index = np.asarray(index, dtype=INDEX_DTYPE)
                    order = np.argsort(index, kind="stable")
                    sorted_index = index[order]
                    starts = np.flatnonzero(
                        np.r_[True, sorted_index[1:] != sorted_index[:-1]]
                    ).astype(INDEX_DTYPE)
                    targets = sorted_index[starts]
                    plan = (order, starts, targets)
                    self._scatter_plans[key] = plan
        return plan

    # ------------------------------------------------------------------
    # Pooled buffers
    # ------------------------------------------------------------------
    def buf(self, key: object, shape: tuple[int, ...],
            dtype: np.dtype = VALUE_DTYPE) -> np.ndarray:
        """A reusable buffer for *key* (contents unspecified)."""
        return self.pool.take(key, shape, dtype)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def bytes_allocated(self) -> int:
        """Total bytes the pool has ever allocated."""
        return self.pool.bytes_allocated

    @property
    def allocations(self) -> int:
        """Total pool cache misses (buffer allocations)."""
        return self.pool.allocations

    def snapshot(self) -> tuple[int, int]:
        """(allocations, bytes) snapshot for per-call deltas."""
        return self.pool.allocations, self.pool.bytes_allocated
