"""Checkpoint/resume for AO-ADMM runs.

A checkpoint captures *everything* the outer loop carries across
iterations — per-mode primal factors **and** scaled duals (the ADMM
warm starts), the per-iteration trace, the last per-mode rho, and
fingerprints of the tensor, the options, and the factor set feeding the
Gram cache — so ``fit_aoadmm(..., resume_from=...)`` continues a run
**bit-identically**: the resumed trace tail and final model match an
uninterrupted run exactly.  Grams, Cholesky factors, CSF trees, and
factor representations are deliberately *not* stored: they are all
deterministic functions of (tensor, factors) and are rebuilt on resume.

Randomness: the driver consumes its RNG only during factor
initialization, which a resumed run never re-enters; the checkpoint
records the init method + seed (``meta["rng"]``) so this invariant is
auditable.

Format: a single ``.npz`` written atomically (temp file + ``rename``)
through :func:`repro.core.serialize.save_state_npz`, with a JSON
metadata blob.  ``meta["version"]`` gates compatibility; loading a
newer-versioned checkpoint fails cleanly rather than misinterpreting it.

What is checked on resume
-------------------------
* the tensor fingerprint (shape, nnz, SHA-1 of coords+values),
* the numerics-affecting option fields (rank, constraints, blocked,
  block size, inner tolerance/iterations, rho policy, representation
  policy, init, seed, guard settings) — *stopping-rule* fields
  (``max_outer_iterations``, ``outer_tolerance``,
  ``time_budget_seconds``, ``callback``) and performance knobs
  (``threads``, ``slab_nnz_target``) may legitimately differ, e.g. to
  extend an exhausted iteration budget,
* the SHA-1 of the stored factor state itself (corruption detection),
* a whole-payload checksum over **every** stored array — duals, trace
  history, rhos included — embedded by
  :func:`repro.core.serialize.save_state_npz` and verified at load
  time, so bit-rot anywhere in the container quarantines the file and
  falls back to the next older version instead of resuming from it.
"""

from __future__ import annotations

import os
import re
import warnings
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..admm.state import AdmmState
from ..constraints.base import Constraint
from ..constraints.registry import make_constraint
from ..core.options import AOADMMOptions
from ..core.serialize import (
    array_fingerprint,
    load_state_npz,
    save_state_npz,
)
from ..core.trace import FactorizationTrace, OuterIterationRecord
from ..observability import record_integrity_event
from ..tensor.coo import COOTensor
from ..validation import require
from .guards import GuardEvent

CHECKPOINT_FORMAT = "repro-aoadmm-checkpoint"
CHECKPOINT_VERSION = 1

#: Option fields that must match between checkpoint and resume (they
#: change the numerics).  Constraints and rho policy are handled
#: separately because their specs are not always JSON values.
_NUMERIC_FIELDS = (
    "rank", "blocked", "block_size", "inner_tolerance",
    "max_inner_iterations", "repr_policy", "sparsity_threshold",
    "factor_zero_tol", "init", "seed", "guard_policy",
    "divergence_patience",
)


def _constraint_token(spec: object) -> object:
    """A JSON-stable token for a constraint spec.

    Normalized through :func:`make_constraint` so the string ``"nonneg"``
    and a ``NonNegative()`` instance fingerprint identically (a CLI-
    written checkpoint resumes from library code and vice versa), while
    parameterized constraints still distinguish their parameters.
    """
    if isinstance(spec, (str, Constraint)):
        instance = make_constraint(spec)
        params = {k: _json_safe(v)
                  for k, v in sorted(vars(instance).items())
                  if not k.startswith("_")}
        return [instance.name, params] if params else instance.name
    return [_constraint_token(s) for s in spec]  # type: ignore[union-attr]


def _json_safe(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def options_fingerprint(options: AOADMMOptions) -> dict:
    """The numerics-affecting option fields as a JSON-stable dict."""
    fp = {name: _json_safe(getattr(options, name))
          for name in _NUMERIC_FIELDS}
    fp["constraints"] = _constraint_token(options.constraints)
    fp["rho_policy"] = (options.rho_policy
                        if isinstance(options.rho_policy, str)
                        else f"<{type(options.rho_policy).__name__}>")
    return fp


def tensor_fingerprint(tensor) -> dict:
    """Shape, nnz, and a content hash of the tensor being factorized.

    Sources that know their own identity (the sharded store froze the
    originating COO's digest at ``create()`` time) answer directly —
    that keeps checkpoints interchangeable between an in-core run and
    an out-of-core run over the same non-zeros, without ever pulling
    the store's slabs into memory here.
    """
    own = getattr(tensor, "fingerprint", None)
    if callable(own):
        return own()
    return {"shape": list(tensor.shape), "nnz": int(tensor.nnz),
            "sha1": array_fingerprint(tensor.coords, tensor.vals)}


@dataclass
class Checkpoint:
    """A loaded (or about-to-be-saved) optimizer state."""

    #: Outer iterations completed when the checkpoint was taken.
    iteration: int
    #: Per-mode primal factors.
    primals: list[np.ndarray]
    #: Per-mode scaled duals (the ADMM warm starts).
    duals: list[np.ndarray]
    #: Last per-mode rho (informational — recomputed from Grams on resume).
    rhos: np.ndarray
    #: The trace up to and including ``iteration``.
    trace: FactorizationTrace
    #: JSON metadata (fingerprints, version, rng record).
    meta: dict

    def states(self) -> list[AdmmState]:
        """Fresh :class:`AdmmState` objects holding this checkpoint."""
        return [AdmmState.from_snapshot(p, d)
                for p, d in zip(self.primals, self.duals)]

    @property
    def last_error(self) -> float:
        return self.trace.final_error()


# ----------------------------------------------------------------------
# Trace <-> array translation
# ----------------------------------------------------------------------

def _trace_arrays(trace: FactorizationTrace,
                  nmodes: int) -> dict[str, np.ndarray]:
    n = len(trace)
    jitter = np.zeros((n, nmodes))
    inner = np.zeros((n, nmodes), dtype=np.int64)
    densities = np.zeros((n, nmodes))
    reprs = np.full((n, nmodes), "dense", dtype="U8")
    for i, r in enumerate(trace.records):
        inner[i] = r.inner_iterations
        densities[i] = r.factor_densities
        reprs[i] = r.representations
        if len(r.jitter_added) == nmodes:
            jitter[i] = r.jitter_added
    return {
        "trace_errors": trace.errors(),
        "trace_mttkrp": np.array([r.mttkrp_seconds for r in trace.records]),
        "trace_admm": np.array([r.admm_seconds for r in trace.records]),
        "trace_other": np.array([r.other_seconds for r in trace.records]),
        "trace_inner": inner,
        "trace_densities": densities,
        "trace_repr": reprs,
        "trace_jitter": jitter,
    }


def _trace_from_arrays(arrays: dict[str, np.ndarray],
                       meta: dict) -> FactorizationTrace:
    trace = FactorizationTrace()
    trace.setup_seconds = float(meta["setup_seconds"])
    events_by_iteration: dict[int, list[GuardEvent]] = {}
    for payload in meta.get("record_guard_events", []):
        event = GuardEvent.from_dict(payload)
        events_by_iteration.setdefault(event.iteration, []).append(event)
    trace.guard_log = [GuardEvent.from_dict(p)
                       for p in meta.get("guard_log", [])]
    errors = arrays["trace_errors"]
    for i in range(errors.shape[0]):
        iteration = i + 1
        trace.append(OuterIterationRecord(
            iteration=iteration,
            relative_error=float(errors[i]),
            mttkrp_seconds=float(arrays["trace_mttkrp"][i]),
            admm_seconds=float(arrays["trace_admm"][i]),
            other_seconds=float(arrays["trace_other"][i]),
            inner_iterations=tuple(int(x) for x in arrays["trace_inner"][i]),
            factor_densities=tuple(float(x)
                                   for x in arrays["trace_densities"][i]),
            representations=tuple(str(x) for x in arrays["trace_repr"][i]),
            jitter_added=tuple(float(x) for x in arrays["trace_jitter"][i]),
            guard_events=tuple(events_by_iteration.get(iteration, ())),
        ))
    return trace


# ----------------------------------------------------------------------
# Save / load / verify
# ----------------------------------------------------------------------

def save_checkpoint(path: str | Path, tensor: COOTensor,
                    options: AOADMMOptions, states: list[AdmmState],
                    trace: FactorizationTrace,
                    rhos: "list[float] | None" = None,
                    fsync: bool = False) -> Path:
    """Atomically write the full optimizer state to *path*; returns it.

    ``block_reports`` (when ``options.track_block_reports`` is set) are
    the one trace field not persisted — they hold per-block objects with
    no stable array form; resumed traces carry ``None`` for pre-resume
    records.  ``fsync=True`` adds a durability barrier before the
    atomic rename (see :func:`repro.core.serialize.save_state_npz`).
    """
    nmodes = len(states)
    arrays: dict[str, np.ndarray] = {}
    for m, state in enumerate(states):
        primal, dual = state.snapshot()
        arrays[f"primal{m}"] = primal
        arrays[f"dual{m}"] = dual
    arrays["rhos"] = np.array(rhos if rhos is not None
                              else [0.0] * nmodes, dtype=float)
    arrays.update(_trace_arrays(trace, nmodes))
    meta = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "iteration": len(trace),
        "nmodes": nmodes,
        "setup_seconds": trace.setup_seconds,
        "options": options_fingerprint(options),
        "tensor": tensor_fingerprint(tensor),
        "state_sha1": array_fingerprint(*(s.primal for s in states)),
        # The loop consumes no randomness after initialization; the seed
        # spec below therefore fully determines the run's RNG history.
        "rng": {"init": options.init, "seed": _json_safe(options.seed)},
        "record_guard_events": [e.to_dict() for r in trace.records
                                for e in r.guard_events],
        "guard_log": [e.to_dict() for e in trace.guard_log],
    }
    return save_state_npz(path, arrays, meta, fsync=fsync)


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`."""
    arrays, meta = load_state_npz(path)
    require(meta.get("format") == CHECKPOINT_FORMAT,
            f"{path} is not an AO-ADMM checkpoint")
    require(meta.get("version", 0) <= CHECKPOINT_VERSION,
            f"{path} has checkpoint version {meta.get('version')}; this "
            f"build reads up to version {CHECKPOINT_VERSION}")
    nmodes = int(meta["nmodes"])
    primals = [arrays[f"primal{m}"] for m in range(nmodes)]
    duals = [arrays[f"dual{m}"] for m in range(nmodes)]
    require(array_fingerprint(*primals) == meta["state_sha1"],
            f"{path} failed its integrity check (factor state hash "
            "mismatch)")
    return Checkpoint(iteration=int(meta["iteration"]), primals=primals,
                      duals=duals, rhos=arrays["rhos"],
                      trace=_trace_from_arrays(arrays, meta), meta=meta)


# ----------------------------------------------------------------------
# Versioned store: retention, quarantine, fallback
# ----------------------------------------------------------------------

#: Suffix appended to a checkpoint file that failed to load (quarantine).
QUARANTINE_SUFFIX = ".corrupt"

_VERSION_RE = re.compile(r"\.it(\d{8})\.npz$")


class CheckpointUnavailable(RuntimeError):
    """No loadable checkpoint exists in the store."""


class CheckpointStore:
    """Versioned checkpoints around one base path, with retention.

    ``CheckpointStore("ck.npz", keep_last=3)`` writes siblings
    ``ck.it00000005.npz``, ``ck.it00000010.npz``, ... — one per
    checkpointed iteration — and keeps only the newest *keep_last*.
    Retention is crash-ordered: a new version is fsynced to stable
    storage **before** any older version is unlinked, so there is never
    an instant with zero durable checkpoints on disk.

    Loading walks versions newest-first.  A file that fails integrity
    verification (truncated zip, hash mismatch, garbage bytes — the
    checkpoint layer fingerprints its own state) is **quarantined**:
    renamed to ``<file>.corrupt`` so it can be inspected but never
    retried, and the next older version is tried instead.  Only when no
    version survives does :class:`CheckpointUnavailable` escalate.
    """

    def __init__(self, base_path: str | Path,
                 keep_last: int | None = None) -> None:
        base = Path(base_path)
        if base.suffix != ".npz":
            base = base.with_name(base.name + ".npz")
        if keep_last is not None:
            require(keep_last >= 1, "keep_last must be at least 1")
        self.base = base
        self.keep_last = keep_last
        #: Paths this store quarantined (after rename), in order.
        self.quarantined: list[Path] = []

    # -- layout --------------------------------------------------------
    def version_path(self, iteration: int) -> Path:
        return self.base.with_name(
            f"{self.base.stem}.it{iteration:08d}.npz")

    def versions(self) -> list[Path]:
        """Existing version files, oldest first."""
        pattern = f"{self.base.stem}.it*.npz"
        out = []
        for p in self.base.parent.glob(pattern):
            if _VERSION_RE.search(p.name):
                out.append(p)
        return sorted(out, key=lambda p: self._iteration_of(p))

    @staticmethod
    def _iteration_of(path: Path) -> int:
        match = _VERSION_RE.search(path.name)
        return int(match.group(1)) if match else -1

    # -- write ---------------------------------------------------------
    def save(self, tensor: COOTensor, options: AOADMMOptions,
             states: list[AdmmState], trace: FactorizationTrace,
             rhos: "list[float] | None" = None) -> Path:
        """Write a new version for ``len(trace)``; prune after the fsync."""
        path = save_checkpoint(self.version_path(len(trace)), tensor,
                               options, states, trace, rhos=rhos,
                               fsync=True)
        self.prune()
        return path

    def prune(self) -> list[Path]:
        """Unlink versions beyond ``keep_last`` (oldest first); returns them."""
        if self.keep_last is None:
            return []
        versions = self.versions()
        doomed = versions[:max(0, len(versions) - self.keep_last)]
        for p in doomed:
            try:
                p.unlink()
            except FileNotFoundError:  # pragma: no cover - racing sweep
                pass
        return doomed

    # -- read ----------------------------------------------------------
    def latest_path(self) -> Path | None:
        """Newest version file, or the plain base path, or ``None``."""
        versions = self.versions()
        if versions:
            return versions[-1]
        return self.base if self.base.exists() else None

    def quarantine(self, path: Path, reason: str) -> Path:
        """Move *path* aside as ``<path>.corrupt``; returns the new name."""
        target = path.with_name(path.name + QUARANTINE_SUFFIX)
        os.replace(path, target)
        record_integrity_event("mismatch", artifact=path.name,
                               detail=reason)
        record_integrity_event("quarantine", artifact=path.name,
                               detail=reason)
        warnings.warn(
            f"quarantined corrupt checkpoint {path.name} -> "
            f"{target.name}: {reason}",
            RuntimeWarning, stacklevel=2)
        self.quarantined.append(target)
        return target

    def load_latest(self) -> tuple[Checkpoint, Path]:
        """Newest checkpoint that passes its integrity check.

        Corrupt versions are quarantined and the next older one is
        tried; raises :class:`CheckpointUnavailable` when nothing loads.
        """
        candidates = list(reversed(self.versions()))
        if self.base.exists():
            candidates.append(self.base)
        for path in candidates:
            try:
                return load_checkpoint(path), path
            except Exception as exc:  # noqa: BLE001 - any load failure
                self.quarantine(path, f"{type(exc).__name__}: {exc}")
        raise CheckpointUnavailable(
            f"no loadable checkpoint under {self.base} "
            f"({len(self.quarantined)} quarantined)")


def resolve_resume(resume_from: "str | Path | Checkpoint") -> Checkpoint:
    """Turn a ``resume_from`` spec into a loaded :class:`Checkpoint`.

    Accepts a loaded checkpoint, an exact file path, or a *base* path
    whose :class:`CheckpointStore` versions exist (the supervised /
    ``keep_last`` layout) — in which case the newest valid version wins,
    with corrupt ones quarantined along the way.
    """
    if isinstance(resume_from, Checkpoint):
        return resume_from
    path = Path(resume_from)
    if path.exists():
        return load_checkpoint(path)
    store = CheckpointStore(path)
    if store.versions():
        checkpoint, _ = store.load_latest()
        return checkpoint
    raise FileNotFoundError(f"no checkpoint at {path} (and no "
                            f"{path.stem}.it*.npz versions beside it)")


def verify_checkpoint(checkpoint: Checkpoint, tensor: COOTensor,
                      options: AOADMMOptions) -> None:
    """Reject a resume whose tensor or numerics-affecting options differ."""
    stored_tensor = checkpoint.meta["tensor"]
    current_tensor = tensor_fingerprint(tensor)
    require(stored_tensor == current_tensor,
            "checkpoint was taken on a different tensor "
            f"(stored {stored_tensor}, got {current_tensor})")
    stored = checkpoint.meta["options"]
    current = options_fingerprint(options)
    mismatched = sorted(k for k in set(stored) | set(current)
                        if stored.get(k) != current.get(k))
    require(not mismatched,
            "checkpoint options mismatch on numerics-affecting fields "
            + ", ".join(f"{k} (stored {stored.get(k)!r}, "
                        f"got {current.get(k)!r})" for k in mismatched))
