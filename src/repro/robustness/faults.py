"""Deterministic fault injection for the robustness test suite.

Guards that are never exercised rot.  This module injects the exact
failure classes the guards exist for — NaN in a kernel output, an
indefinite Gram handed to the Cholesky path, a diverging objective, and
a failed/timed-out distributed worker — at predetermined (iteration,
mode) points, so ``tests/test_robustness.py`` can prove each guard fires
and each recovery path works.  Everything is deterministic: no
randomness, no monkeypatching — the drivers call the injector at their
hook points when one is configured.

Shared-memory driver
    Pass a :class:`FaultInjector` via ``AOADMMOptions.fault_injector``;
    ``fit_aoadmm`` routes every MTTKRP output, composed Gram, and
    relative error through it.

Distributed driver
    Pass a :class:`WorkerFaultPlan` to ``fit_aoadmm_distributed``; the
    plan raises :class:`~repro.distributed.comm.WorkerFailure` inside a
    rank's local MTTKRP, exercising the retry and re-partition fallback.

Process executor
    Attach a :class:`WorkerKillPlan` as the
    :class:`~repro.parallel.executor.ProcessExecutor`'s ``fault_plan``;
    the pool calls it back before every batch dispatch and the plan
    ``SIGKILL``\\ s real worker processes — exercising the respawn/
    resubmit path and (relentlessly) the thread-executor fallback.

Storage
    :func:`inject_slab_fault` damages a sharded-store slab file on disk
    (:data:`STORAGE_FAULT_KINDS`: a seeded single-bit flip or a seeded
    truncation), exercising the integrity layer's verified reads;
    :class:`ShardCrashPlan` aborts ``ShardedTensorStore.create`` before
    the Nth slab write, proving the torn-write-safe commit (the target
    never parses as a store).  Both are deterministic functions of
    their spec, so the differential harness can replay the exact same
    damage on both sides of a comparison.
"""

from __future__ import annotations

import errno
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..distributed.comm import WorkerFailure
from ..parallel.shm import ShmAllocationError
from ..validation import require

#: Fault classes understood by :class:`FaultInjector`.
#:
#: The first three corrupt *values* flowing through the loop (exercising
#: the numerical guards); the rest simulate *environment* failures for
#: the supervisor: ``stall`` wedges the loop until the watchdog
#: interrupts it, ``shm_oom`` raises
#: :class:`~repro.parallel.shm.ShmAllocationError` (memory pressure),
#: ``checkpoint_enospc`` makes the next checkpoint write fail with
#: ``ENOSPC``, and ``checkpoint_corrupt`` scribbles garbage over the
#: checkpoint that was just written (exercising quarantine + fallback).
FAULT_KINDS = ("mttkrp_nan", "indefinite_gram", "diverge_error",
               "stall", "shm_oom", "checkpoint_enospc",
               "checkpoint_corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault for the shared-memory driver.

    ``once=True`` fires exactly at ``iteration`` (and ``mode``, when
    given) and is then spent; ``once=False`` fires at every matching
    point from ``iteration`` onwards — that is how a *sustained*
    divergence is staged.
    """

    kind: str
    #: Outer iteration (1-based) at which the fault fires.
    iteration: int
    #: Mode to hit; ``None`` matches any mode (kind-dependent).
    mode: int | None = None
    once: bool = True
    #: For ``kind="stall"``: wedge for this many seconds, then resume.
    #: ``None`` stalls indefinitely — until the watchdog injects
    #: :class:`~repro.robustness.watchdog.FitStalled` into the loop.
    seconds: float | None = None

    def __post_init__(self) -> None:
        require(self.kind in FAULT_KINDS,
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}")
        require(self.iteration >= 1, "fault iteration is 1-based")
        require(self.seconds is None or self.seconds > 0.0,
                "stall seconds must be positive when given")


@dataclass(frozen=True)
class InjectionRecord:
    """One fault that was actually injected (the harness's audit log)."""

    kind: str
    iteration: int
    mode: int | None


class FaultInjector:
    """Applies a list of :class:`FaultSpec` at the driver's hook points."""

    def __init__(self, faults: list[FaultSpec] | tuple[FaultSpec, ...]):
        self.faults = list(faults)
        self._spent: set[int] = set()
        #: Everything injected so far, in order.
        self.injected: list[InjectionRecord] = []

    def _match(self, kind: str, iteration: int, mode: int | None) -> bool:
        for i, f in enumerate(self.faults):
            if f.kind != kind or (i in self._spent):
                continue
            if f.mode is not None and mode is not None and f.mode != mode:
                continue
            hit = (iteration == f.iteration if f.once
                   else iteration >= f.iteration)
            if not hit:
                continue
            if f.once:
                self._spent.add(i)
            self.injected.append(InjectionRecord(kind, iteration, mode))
            return True
        return False

    # ------------------------------------------------------------------
    # Hook points (called by fit_aoadmm when an injector is configured)
    # ------------------------------------------------------------------
    def corrupt_mttkrp(self, kmat: np.ndarray, iteration: int,
                       mode: int) -> np.ndarray:
        """Poison one entry of the MTTKRP output with NaN."""
        if not self._match("mttkrp_nan", iteration, mode):
            return kmat
        out = np.array(kmat, copy=True)
        out.flat[0] = np.nan
        return out

    def corrupt_gram(self, gram: np.ndarray, iteration: int,
                     mode: int) -> np.ndarray:
        """Make the composed Gram indefinite (negative leading diagonal)."""
        if not self._match("indefinite_gram", iteration, mode):
            return gram
        shift = float(np.trace(gram)) + 1.0
        return gram - shift * np.eye(gram.shape[0])

    def corrupt_error(self, error: float, iteration: int) -> float:
        """Inflate the relative error to stage objective divergence."""
        if not self._match("diverge_error", iteration, None):
            return error
        return error * 10.0 + 1.0

    def _stall_seconds(self, iteration: int) -> float | None:
        """Duration of the stall fired at *iteration* (sentinel inf = forever)."""
        for i, f in enumerate(self.faults):
            if f.kind != "stall" or i in self._spent:
                continue
            if iteration == f.iteration if f.once else iteration >= f.iteration:
                return f.seconds if f.seconds is not None else float("inf")
        return None

    def pre_iteration(self, iteration: int) -> None:
        """Environment faults fired at the top of an outer iteration.

        ``stall`` blocks in an interruptible short-sleep loop — forever
        when ``seconds`` is unset, so only the watchdog's injected
        :class:`~repro.robustness.watchdog.FitStalled` (or a signal) can
        unwedge it.  ``shm_oom`` raises
        :class:`~repro.parallel.shm.ShmAllocationError`, the same class
        a genuine shared-memory mapping failure produces.
        """
        duration = self._stall_seconds(iteration)
        if duration is not None and self._match("stall", iteration, None):
            start = time.monotonic()
            while time.monotonic() - start < duration:
                # Short ticks: async-injected exceptions and signals are
                # delivered between bytecodes, never mid-sleep(3600).
                time.sleep(0.01)
        if self._match("shm_oom", iteration, None):
            raise ShmAllocationError(
                f"injected shared-memory allocation failure at iteration "
                f"{iteration}")

    def check_checkpoint_write(self, iteration: int) -> None:
        """Fail the checkpoint write at *iteration* with ``ENOSPC``."""
        if self._match("checkpoint_enospc", iteration, None):
            raise OSError(errno.ENOSPC,
                          f"injected ENOSPC during checkpoint write at "
                          f"iteration {iteration}")

    def corrupt_checkpoint(self, path, iteration: int) -> bool:
        """Scribble garbage over the checkpoint just written at *path*.

        Fired *after* a successful write, so the corrupt-latest /
        fall-back-to-previous recovery path is exercised exactly as a
        torn page or bit rot would: the file exists, has a plausible
        size, and fails integrity verification on load.
        """
        if not self._match("checkpoint_corrupt", iteration, None):
            return False
        path = Path(path)
        size = max(path.stat().st_size, 64)
        path.write_bytes(b"\x00repro-injected-corruption\x00" * (size // 27 + 1))
        return True


# ----------------------------------------------------------------------
# Storage faults (sharded-store slab damage + shard crashes)
# ----------------------------------------------------------------------

#: On-disk damage classes :func:`inject_slab_fault` understands.
STORAGE_FAULT_KINDS = ("slab_bitflip", "slab_truncate")


@dataclass(frozen=True)
class SlabFaultSpec:
    """One scheduled slab damage: kind + target slab + seed.

    The damage site is a deterministic function of the spec: ``seed``
    feeds ``np.random.default_rng``, which picks the byte offset and
    bit (``slab_bitflip``) or the surviving length (``slab_truncate``).
    Same spec, same slab bytes → same damage, every time.
    """

    kind: str
    mode: int = 0
    index: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        require(self.kind in STORAGE_FAULT_KINDS,
                f"unknown storage fault kind {self.kind!r}; expected "
                f"one of {STORAGE_FAULT_KINDS}")
        require(self.mode >= 0, "mode must be non-negative")
        require(self.index >= 0, "slab index must be non-negative")


@dataclass(frozen=True)
class SlabFaultRecord:
    """One slab damage actually applied (the harness's audit log)."""

    kind: str
    path: Path
    #: Byte offset flipped (bitflip) or surviving length (truncate).
    offset: int
    detail: str


def inject_slab_fault(store, spec: SlabFaultSpec) -> SlabFaultRecord:
    """Damage one slab file of *store* on disk, per *spec*.

    ``slab_bitflip`` flips one bit of one byte; ``slab_truncate`` cuts
    the file strictly shorter.  Returns the audit record naming exactly
    what was done.  The store's read path must subsequently either
    rebuild the slab (source attached) or raise ``IntegrityError`` —
    never return the damaged bytes.
    """
    path = Path(store.slab_path(spec.mode, spec.index))
    size = path.stat().st_size
    require(size >= 1, f"{path} is empty; nothing to damage")
    rng = np.random.default_rng(spec.seed)
    if spec.kind == "slab_bitflip":
        offset = int(rng.integers(0, size))
        bit = int(rng.integers(0, 8))
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)[0]
            handle.seek(offset)
            handle.write(bytes([byte ^ (1 << bit)]))
        return SlabFaultRecord(spec.kind, path, offset,
                               f"flipped bit {bit} of byte {offset}")
    keep = int(rng.integers(0, size))
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return SlabFaultRecord(spec.kind, path, keep,
                           f"truncated {size} -> {keep} bytes")


class InjectedCrash(RuntimeError):
    """Raised by :class:`ShardCrashPlan` to abort a shard mid-write."""


@dataclass
class ShardCrashPlan:
    """Kill a ``ShardedTensorStore.create`` before its Nth slab write.

    Pass the plan as ``create(..., fault_hook=plan)``; it counts slab
    writes and at the ``at_slab``-th one either raises
    :class:`InjectedCrash` (default — the checkpoint_enospc style of
    injection, catchable by the test) or hard-kills the process with
    ``os._exit`` (``hard=True``, for subprocess-based crash tests where
    no ``finally`` block may run).  Either way the torn-write contract
    must hold: the target directory never contains a ``meta.json``, so
    it never parses as a store.
    """

    #: 1-based count of slab writes at which the crash fires.
    at_slab: int = 1
    #: Exit via ``os._exit`` instead of raising (no cleanup runs).
    hard: bool = False
    exit_code: int = 57

    def __post_init__(self) -> None:
        require(self.at_slab >= 1, "at_slab is 1-based")
        self.writes = 0
        self.fired = False

    def __call__(self, rel: str) -> None:
        self.writes += 1
        if self.fired or self.writes < self.at_slab:
            return
        self.fired = True
        if self.hard:  # pragma: no cover - exercised via subprocess
            os._exit(self.exit_code)
        raise InjectedCrash(
            f"injected crash before slab write #{self.writes} ({rel!r})")


# ----------------------------------------------------------------------
# Distributed worker faults
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class WorkerFault:
    """One scheduled worker failure for the distributed driver.

    ``kind="timeout"`` is transient: it fires once and the retry
    succeeds.  ``kind="crash"`` is permanent: the rank keeps failing
    from ``iteration`` on, so after the retry budget is exhausted the
    driver drops it and re-partitions the tensor over the survivors.
    """

    rank: int
    #: Outer iteration (1-based) from which the fault is active.
    iteration: int
    #: Mode during which to fire; ``None`` matches any mode.
    mode: int | None = None
    kind: str = "crash"

    def __post_init__(self) -> None:
        require(self.kind in ("crash", "timeout"),
                f"unknown worker fault kind {self.kind!r}")
        require(self.rank >= 0, "rank must be non-negative")
        require(self.iteration >= 1, "fault iteration is 1-based")


@dataclass
class WorkerFaultPlan:
    """Schedule of :class:`WorkerFault` consulted by the distributed driver.

    Ranks are identified by their *original* index at launch; the driver
    keeps the mapping stable across re-partitions.
    """

    faults: list[WorkerFault] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._spent: set[int] = set()
        #: Failures actually raised, in order.
        self.fired: list[WorkerFault] = []

    def maybe_fail(self, rank: int, iteration: int, mode: int) -> None:
        """Raise :class:`WorkerFailure` if a fault is scheduled here."""
        for i, f in enumerate(self.faults):
            if f.rank != rank or i in self._spent:
                continue
            if f.mode is not None and f.mode != mode:
                continue
            if f.kind == "timeout":
                if iteration != f.iteration:
                    continue
                self._spent.add(i)  # transient: the retry succeeds
            elif iteration < f.iteration:
                continue
            self.fired.append(f)
            raise WorkerFailure(rank=rank, kind=f.kind,
                                detail=f"scheduled at iteration "
                                       f"{f.iteration}")


# ----------------------------------------------------------------------
# Process-pool worker kills (executor fault injection)
# ----------------------------------------------------------------------

@dataclass
class WorkerKillPlan:
    """``SIGKILL`` pool workers at dispatch time (real process deaths).

    The :class:`~repro.parallel.procpool.ProcessPool` invokes
    ``on_dispatch(pool)`` before every batch dispatch *and* after every
    respawn round.  With ``relentless=False`` (default) the plan kills
    ``kills`` workers exactly once, at the ``at_dispatch``-th dispatch —
    the pool must respawn, resubmit the lost tasks, and return a correct
    (bit-identical) result.  With ``relentless=True`` it kills at every
    opportunity from ``at_dispatch`` on, which exhausts the respawn
    budget and forces :class:`~repro.parallel.procpool.ProcessPoolBroken`
    — the engine's thread-executor fallback path.
    """

    #: 1-based dispatch count at which killing starts.
    at_dispatch: int = 1
    #: Workers killed per firing.
    kills: int = 1
    #: Keep killing at every dispatch (to exhaust the respawn budget).
    relentless: bool = False

    def __post_init__(self) -> None:
        require(self.at_dispatch >= 1, "at_dispatch is 1-based")
        require(self.kills >= 1, "kills must be positive")
        self._dispatches = 0
        self._fired = False
        #: Pids actually killed, in order (the audit log).
        self.killed_pids: list[int] = []

    def on_dispatch(self, pool) -> None:
        self._dispatches += 1
        if self._dispatches < self.at_dispatch:
            return
        if self._fired and not self.relentless:
            return
        self._fired = True
        # Distinct indices: killing index 0 repeatedly would re-target
        # the same (already reaped) worker and leave the rest alive.
        for i in range(min(self.kills, pool.size)):
            self.killed_pids.append(pool.kill_worker(i))
