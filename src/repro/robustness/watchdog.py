"""Heartbeat watchdog: detect and interrupt stalled factorizations.

AO-ADMM's per-outer-iteration cost is essentially constant — the same
Grams, the same MTTKRPs, the same inner solves against a static sparsity
pattern (Huang/Sidiropoulos/Liavas) — which makes a *stall* sharply
detectable: when the time since the last completed iteration exceeds a
small multiple of the run's own moving per-iteration estimate, the fit
is not "slow", it is wedged (a worker pool waiting on a dead pipe, a
kernel spinning on poisoned state).

:class:`Watchdog` owns a daemon thread fed by per-outer-iteration
heartbeats (the supervisor wires them from the observability layer's
``iteration`` events).  On expiry it interrupts the fit thread by
injecting :class:`FitStalled` asynchronously (CPython's
``PyThreadState_SetAsyncExc``), which unwinds the driver at the next
bytecode boundary — including out of the process pool's 0.25 s
``connection.wait`` tick — so the supervisor can quarantine the attempt
and resume from the last checkpoint.
"""

from __future__ import annotations

import ctypes
import threading
import time
from collections import deque
from typing import Callable

from ..validation import require


class FitStalled(RuntimeError):
    """Raised (asynchronously) inside a fit the watchdog declared stalled."""


def _async_raise(thread_id: int, exc_type: type[BaseException]) -> bool:
    """Inject *exc_type* into the thread with *thread_id* (CPython only).

    Returns ``False`` when the interpreter refuses (unknown thread id —
    e.g. the fit already returned); over-delivery is undone per the
    C-API contract.
    """
    res = ctypes.pythonapi.PyThreadState_SetAsyncExc(
        ctypes.c_ulong(thread_id), ctypes.py_object(exc_type))
    if res > 1:  # pragma: no cover - C-API contract, not reachable here
        ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(thread_id), None)
        return False
    return res == 1


class Watchdog:
    """A moving-estimate iteration deadline enforced by a monitor thread.

    Parameters
    ----------
    stall_factor:
        The deadline is ``stall_factor`` times the moving mean of the
        last *window* iteration durations — generous enough that cache
        effects and repr rebuilds never false-positive, tight enough
        that a wedged pool is caught within a few iteration times.
    min_deadline_seconds:
        Deadline floor; also the grace period before the first
        heartbeat (setup: CSF builds, pool spawn).
    window:
        Heartbeat intervals kept in the moving estimate.
    poll_seconds:
        Monitor thread wake-up period.
    on_stall:
        Called once (from the monitor thread) when a stall is declared,
        *instead of* the default interrupt — tests use this; the
        supervisor keeps the default, which injects :class:`FitStalled`
        into the watched thread.
    clock:
        Injectable monotonic time source.
    """

    def __init__(self, stall_factor: float = 8.0,
                 min_deadline_seconds: float = 5.0,
                 window: int = 5,
                 poll_seconds: float = 0.05,
                 on_stall: "Callable[[float], None] | None" = None,
                 clock: Callable[[], float] = time.monotonic):
        require(stall_factor > 1.0, "stall_factor must exceed 1")
        require(min_deadline_seconds > 0.0,
                "min_deadline_seconds must be positive")
        require(window >= 1, "window must be at least 1")
        self.stall_factor = float(stall_factor)
        self.min_deadline = float(min_deadline_seconds)
        self.window = int(window)
        self.poll_seconds = float(poll_seconds)
        self._on_stall = on_stall
        self._clock = clock
        self._intervals: deque[float] = deque(maxlen=self.window)
        self._lock = threading.Lock()
        self._last_beat: float | None = None
        self._beats = 0
        self._target_thread_id: int | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: True once this watchdog declared (and acted on) a stall.
        self.stalled = False
        #: Seconds past the deadline when the stall was declared.
        self.stall_overshoot = 0.0

    # ------------------------------------------------------------------
    @property
    def beats(self) -> int:
        return self._beats

    def estimate(self) -> float | None:
        """Moving mean of the recent iteration durations (None = no data)."""
        with self._lock:
            if not self._intervals:
                return None
            return sum(self._intervals) / len(self._intervals)

    def deadline_seconds(self) -> float:
        """Current stall deadline (floor until enough heartbeats arrive)."""
        est = self.estimate()
        if est is None:
            return self.min_deadline
        return max(self.min_deadline, self.stall_factor * est)

    def beat(self) -> None:
        """One outer iteration completed (any thread may call this)."""
        now = self._clock()
        with self._lock:
            if self._last_beat is not None:
                self._intervals.append(now - self._last_beat)
            self._last_beat = now
            self._beats += 1

    # ------------------------------------------------------------------
    def start(self, target_thread_id: int | None = None) -> "Watchdog":
        """Arm the watchdog over the thread with *target_thread_id*.

        Defaults to the calling thread — the one about to run the fit.
        """
        require(self._thread is None, "watchdog already started")
        self._target_thread_id = (target_thread_id
                                  if target_thread_id is not None
                                  else threading.get_ident())
        self._last_beat = self._clock()  # setup counts against the grace
        self._thread = threading.Thread(target=self._monitor,
                                        name="repro-watchdog", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Disarm (idempotent); joins the monitor thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "Watchdog":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _monitor(self) -> None:
        while not self._stop.wait(self.poll_seconds):
            with self._lock:
                last = self._last_beat
            if last is None:
                continue
            elapsed = self._clock() - last
            deadline = self.deadline_seconds()
            if elapsed <= deadline:
                continue
            self.stalled = True
            self.stall_overshoot = elapsed - deadline
            if self._on_stall is not None:
                self._on_stall(elapsed)
            else:
                assert self._target_thread_id is not None
                _async_raise(self._target_thread_id, FitStalled)
            return
