"""Numerical guards for the AO-ADMM driver.

Huang-Sidiropoulos-Liavas (the AO-ADMM framework) and
Liavas-Sidiropoulos (parallel constrained ADMM) both observe that the
per-mode subproblems degrade under ill-conditioned Grams and need
safeguarding.  Concretely, three things go wrong in long runs:

* a kernel emits NaN/Inf (bad input data, overflow under huge rho),
* an L1-killed rank-deficient Gram drives the inner solve non-finite,
* the outer objective diverges instead of converging.

Without guards the driver propagates the first NaN through every
subsequent Gram, MTTKRP, and prox — and, because ``NaN < tol`` is false,
the convergence criterion never stops the loop early.  The
:class:`HealthMonitor` checks the MTTKRP output, the post-update ADMM
primal/dual state, and the relative-error series every iteration and
reacts per a configurable policy:

``raise``
    Abort immediately with :class:`NumericalFaultError` (default — fail
    loudly instead of returning garbage).
``rollback``
    Restore the best (lowest-error) factor/dual snapshot seen so far and
    stop the run cleanly (``stop_reason`` ``"rollback"`` /
    ``"diverged"``).
``repair``
    Zero out the non-finite entries and continue, recording the repair
    in the trace.  Divergence cannot be repaired in place, so it falls
    back to the rollback behaviour.

Every reaction is recorded as a :class:`GuardEvent`, surfaced through
``OuterIterationRecord.guard_events`` and ``FactorizationTrace.guard_log``
so benchmark replays can see exactly which repairs happened when.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..admm.state import AdmmState
from ..validation import require

#: Accepted values for ``AOADMMOptions.guard_policy``.
GUARD_POLICIES = ("off", "raise", "rollback", "repair")


@dataclass(frozen=True)
class GuardEvent:
    """One guard reaction (detection + what was done about it)."""

    #: Outer iteration (1-based) during which the guard fired.
    iteration: int
    #: What was detected: ``"nonfinite"``, ``"divergence"``, or
    #: ``"worker_lost"`` (process-executor pool broken).
    kind: str
    #: Where: ``"mttkrp"``, ``"primal"``, ``"dual"``, or ``"error"``.
    site: str
    #: What happened: ``"raise"``, ``"repair"``, ``"rollback"``, or
    #: ``"executor_fallback"`` (process pool -> thread executor).
    action: str
    #: Mode being updated when the guard fired (None for error checks).
    mode: int | None = None
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-serializable form (checkpoint persistence)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "GuardEvent":
        return cls(**payload)


class NumericalFaultError(RuntimeError):
    """A guard fired under the ``raise`` policy."""

    def __init__(self, event: GuardEvent):
        self.event = event
        super().__init__(
            f"numerical fault at outer iteration {event.iteration}"
            + (f", mode {event.mode}" if event.mode is not None else "")
            + f": {event.kind} in {event.site}"
            + (f" ({event.detail})" if event.detail else ""))


class RollbackRequested(Exception):
    """Internal control flow: the driver must restore and stop.

    Raised by :class:`HealthMonitor` under the ``rollback`` policy (and
    for unrepairable faults under ``repair``); caught only by the
    driver's outer loop — never escapes ``fit_aoadmm``.
    """

    def __init__(self, event: GuardEvent, stop_reason: str):
        self.event = event
        self.stop_reason = stop_reason
        super().__init__(stop_reason)


class HealthMonitor:
    """Per-run numerical health checks with a configurable policy.

    Parameters
    ----------
    policy:
        One of :data:`GUARD_POLICIES` (``"off"`` disables every check —
        callers usually just skip constructing the monitor instead).
    divergence_patience:
        Number of *consecutive* outer iterations with a rising relative
        error that counts as divergence.  Note the stock convergence
        criterion already stops on any non-improving iteration, so with
        the default stopping rule this guard mainly catches NaN errors
        (which the criterion cannot see: ``NaN`` comparisons are false)
        and, with ``patience=1`` + ``rollback``, gives
        "return the best iterate, not the last" semantics.
    """

    def __init__(self, policy: str = "raise", divergence_patience: int = 3):
        require(policy in GUARD_POLICIES,
                f"unknown guard policy {policy!r}; expected one of "
                f"{GUARD_POLICIES}")
        require(divergence_patience >= 1,
                "divergence patience must be at least 1")
        self.policy = policy
        self.patience = int(divergence_patience)
        #: Every event this monitor produced, in order.
        self.events: list[GuardEvent] = []
        self._iteration_events: list[GuardEvent] = []
        self._previous_error: float | None = None
        self._rising_streak = 0
        self._best_error = float("inf")
        self._best_iteration = 0
        self._best_snapshot: list[tuple[np.ndarray, np.ndarray]] | None = None

    # ------------------------------------------------------------------
    # Snapshot management (rollback support)
    # ------------------------------------------------------------------
    def commit(self, states: list[AdmmState], error: float,
               iteration: int) -> None:
        """Record *states* as the rollback target if they are the best yet.

        The driver calls this once before the loop (the initial factors,
        ``error=inf`` — kept only until something better exists) and
        after every healthy outer iteration.
        """
        if self._best_snapshot is not None and not error < self._best_error:
            return
        self._best_snapshot = [(s.primal.copy(), s.dual.copy())
                               for s in states]
        self._best_error = float(error)
        self._best_iteration = int(iteration)

    def restore(self, states: list[AdmmState]) -> int:
        """Overwrite *states* with the best snapshot; returns its iteration."""
        require(self._best_snapshot is not None,
                "no snapshot committed before restore")
        for state, (primal, dual) in zip(states, self._best_snapshot):
            state.primal = primal.copy()
            state.dual = dual.copy()
        return self._best_iteration

    # ------------------------------------------------------------------
    # Checks (driver hook points)
    # ------------------------------------------------------------------
    def check_mttkrp(self, kmat: np.ndarray, iteration: int,
                     mode: int) -> np.ndarray:
        """Validate one MTTKRP output; returns it (repaired if needed)."""
        if self.policy == "off" or np.isfinite(kmat).all():
            return kmat
        bad = int(kmat.size - np.isfinite(kmat).sum())
        return self._nonfinite(kmat, "mttkrp", iteration, mode,
                               f"{bad} non-finite entries")

    def check_state(self, state: AdmmState, iteration: int,
                    mode: int) -> None:
        """Validate a mode's post-update primal/dual pair (in place)."""
        if self.policy == "off":
            return
        for site, arr in (("primal", state.primal), ("dual", state.dual)):
            if np.isfinite(arr).all():
                continue
            bad = int(arr.size - np.isfinite(arr).sum())
            repaired = self._nonfinite(arr, site, iteration, mode,
                                       f"{bad} non-finite entries")
            arr[...] = repaired

    def observe_error(self, error: float, iteration: int) -> None:
        """Track the relative-error series; detects NaN and divergence."""
        if self.policy == "off":
            return
        if not np.isfinite(error):
            self._react(GuardEvent(iteration=iteration, kind="nonfinite",
                                   site="error",
                                   action=self._terminal_action(),
                                   detail=f"relative error {error!r}"),
                        stop_reason="rollback")
            return
        if self._previous_error is not None \
                and error > self._previous_error:
            self._rising_streak += 1
        else:
            self._rising_streak = 0
        self._previous_error = float(error)
        if self._rising_streak >= self.patience:
            self._react(GuardEvent(
                iteration=iteration, kind="divergence", site="error",
                action=self._terminal_action(),
                detail=f"error rose {self._rising_streak} consecutive "
                       f"iterations (best {self._best_error:.6g} at "
                       f"iteration {self._best_iteration})"),
                stop_reason="diverged")

    def drain_iteration_events(self) -> tuple[GuardEvent, ...]:
        """Events since the last drain (one outer iteration's worth)."""
        out = tuple(self._iteration_events)
        self._iteration_events.clear()
        return out

    # ------------------------------------------------------------------
    def _terminal_action(self) -> str:
        # Divergence / NaN error cannot be repaired entry-wise; "repair"
        # degrades to the rollback behaviour.
        return "raise" if self.policy == "raise" else "rollback"

    def _record(self, event: GuardEvent) -> None:
        self.events.append(event)
        self._iteration_events.append(event)

    def _react(self, event: GuardEvent, stop_reason: str) -> None:
        self._record(event)
        if event.action == "raise":
            raise NumericalFaultError(event)
        raise RollbackRequested(event, stop_reason=stop_reason)

    def _nonfinite(self, arr: np.ndarray, site: str, iteration: int,
                   mode: int, detail: str) -> np.ndarray:
        if self.policy == "repair":
            self._record(GuardEvent(iteration=iteration, kind="nonfinite",
                                    site=site, action="repair", mode=mode,
                                    detail=detail))
            return np.nan_to_num(arr, nan=0.0, posinf=0.0, neginf=0.0)
        action = "raise" if self.policy == "raise" else "rollback"
        self._react(GuardEvent(iteration=iteration, kind="nonfinite",
                               site=site, action=action, mode=mode,
                               detail=detail),
                    stop_reason="rollback")
        raise AssertionError("unreachable")  # pragma: no cover
