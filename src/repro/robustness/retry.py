"""Retry primitives: backoff schedules, deadlines, and attempt budgets.

The supervisor (:mod:`repro.robustness.supervisor`) reacts to *transient*
failures — a broken worker pool, a shared-memory allocation that lost a
race against memory pressure, a checkpoint write hitting ``ENOSPC`` — by
waiting briefly and trying again.  The three primitives here keep that
logic deterministic and testable:

* :class:`Backoff` — an exponential delay schedule with a cap.  No
  randomized jitter: supervised runs must be replayable, and the process
  is retrying against *itself* (its own pool, its own disk), not against
  a shared remote service, so thundering-herd desynchronization buys
  nothing.
* :class:`Deadline` — a monotonic wall-clock budget shared by every
  attempt of one operation.
* :class:`RetryPolicy` — the attempt budget plus the transient-exception
  classification, combining both into :meth:`RetryPolicy.call`.

Time never comes from the wall clock directly: both ``sleep`` and
``clock`` are injectable, so the test suite drives whole retry storms in
microseconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..validation import require


@dataclass(frozen=True)
class Backoff:
    """Exponential backoff: ``initial * multiplier**(attempt-1)``, capped.

    ``delay(1)`` is the wait after the *first* failure.  The schedule is
    fully deterministic — see the module docstring for why there is no
    jitter term.
    """

    initial: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 30.0

    def __post_init__(self) -> None:
        require(self.initial >= 0.0, "initial delay must be non-negative")
        require(self.multiplier >= 1.0, "multiplier must be >= 1")
        require(self.max_delay >= self.initial,
                "max_delay must be at least the initial delay")

    def delay(self, attempt: int) -> float:
        """Seconds to wait after failed attempt number *attempt* (1-based)."""
        require(attempt >= 1, "attempts are 1-based")
        return min(self.initial * self.multiplier ** (attempt - 1),
                   self.max_delay)

    def delays(self, attempts: int) -> Iterator[float]:
        """The first *attempts* delays, in order (schedule inspection)."""
        return (self.delay(i) for i in range(1, attempts + 1))


class Deadline:
    """A wall-clock budget: ``None`` seconds means unbounded.

    Built on an injectable monotonic *clock* so tests can expire a
    deadline without sleeping.
    """

    def __init__(self, seconds: float | None,
                 clock: Callable[[], float] = time.monotonic):
        if seconds is not None:
            require(seconds > 0.0, "deadline must be positive")
        self.seconds = seconds
        self._clock = clock
        self._start = clock()

    def remaining(self) -> float:
        """Seconds left (``inf`` when unbounded; never below 0)."""
        if self.seconds is None:
            return float("inf")
        return max(0.0, self.seconds - (self._clock() - self._start))

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def clamp(self, delay: float) -> float:
        """*delay* shortened so a sleep can never overshoot the deadline."""
        return min(delay, self.remaining())


class RetryBudgetExceeded(RuntimeError):
    """Every retry attempt failed (last failure chained as ``__cause__``)."""

    def __init__(self, attempts: int, last: BaseException):
        self.attempts = attempts
        self.last = last
        super().__init__(
            f"operation failed after {attempts} attempt(s): "
            f"{type(last).__name__}: {last}")
        self.__cause__ = last


@dataclass
class RetryPolicy:
    """Bounded retries of an operation whose failures may be transient.

    Parameters
    ----------
    max_attempts:
        Total tries (first call included); ``1`` disables retrying.
    backoff:
        Delay schedule between attempts.
    transient:
        Exception classes worth retrying.  Anything else propagates
        immediately — a :class:`~repro.robustness.guards.
        NumericalFaultError` is a property of the *math*, and re-running
        the same math reproduces it, so it must never burn the budget.
    deadline_seconds:
        Optional wall-clock budget across all attempts.
    sleep, clock:
        Injectable time sources (tests pass fakes).
    """

    max_attempts: int = 3
    backoff: Backoff = field(default_factory=Backoff)
    transient: tuple[type[BaseException], ...] = (OSError, MemoryError)
    deadline_seconds: float | None = None
    sleep: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        require(self.max_attempts >= 1, "need at least one attempt")

    def is_transient(self, exc: BaseException) -> bool:
        return isinstance(exc, self.transient)

    def call(self, fn: Callable[[], object],
             on_retry: "Callable[[int, BaseException], None] | None" = None
             ) -> object:
        """Run ``fn()`` under this policy; returns its result.

        *on_retry* (if given) is invoked as ``on_retry(attempt, exc)``
        after each transient failure, before the backoff sleep — the
        supervisor uses it to emit guard events and metrics.
        """
        deadline = Deadline(self.deadline_seconds, clock=self.clock)
        last: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except BaseException as exc:  # noqa: BLE001 - classified below
                if not self.is_transient(exc):
                    raise
                last = exc
                if on_retry is not None:
                    on_retry(attempt, exc)
                if attempt == self.max_attempts or deadline.expired:
                    break
                self.sleep(deadline.clamp(self.backoff.delay(attempt)))
        assert last is not None
        raise RetryBudgetExceeded(attempt, last)
