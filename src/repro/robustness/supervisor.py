"""Resilient fit supervision: watchdog, retry, preemption, degradation.

:class:`FitSupervisor` wraps the AO-ADMM driver so a factorization
*completes* — or is *cleanly preempted* — under the failure classes a
long-running production fit actually meets:

wedged runs
    A :class:`~repro.robustness.watchdog.Watchdog` thread is fed one
    heartbeat per outer iteration (from the observability layer's
    ``iteration`` events).  AO-ADMM's per-iteration cost is essentially
    constant, so when the time since the last heartbeat exceeds a small
    multiple of the run's own moving estimate, the fit is declared
    *stalled* and interrupted with
    :class:`~repro.robustness.watchdog.FitStalled`.

transient faults
    Stalls, broken process pools
    (:class:`~repro.parallel.procpool.ProcessPoolBroken`), shared-memory
    allocation failures
    (:class:`~repro.parallel.shm.ShmAllocationError` / ``MemoryError``),
    and checkpoint I/O errors (``OSError``) are retried with exponential
    backoff (:mod:`repro.robustness.retry`) from the newest valid
    checkpoint.  Numerical faults are **not** transient — a NaN does not
    go away by retrying — and propagate to the caller.

degradation ladder
    On memory pressure or repeated pool loss the supervisor steps down
    a ladder of progressively more conservative configurations before
    the next attempt: executor ``process -> thread -> serial``, then a
    shrinking ``slab_nnz_target``, then kernel memoization off.  Every
    rung changes *where and how fast* work executes, never *what* is
    computed — results stay bit-identical (the executor equivalence
    contract) — so a degraded retry still reproduces the unfaulted run
    exactly.

graceful preemption
    SIGTERM/SIGINT set the driver's ``preempt_flag``; the loop finishes
    the iteration in flight, writes a final checkpoint, and returns with
    ``stop_reason="preempted"`` — a later run with ``resume_from`` the
    same path continues bit-identically.

Every recovery action is recorded three ways: a
:class:`~repro.robustness.guards.GuardEvent` appended to the result's
``trace.guard_log`` (site ``"supervisor"``), a
``record_supervisor_event`` metrics emission, and the
:class:`SupervisorReport` returned alongside the result.
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable

import numpy as np

from ..config import DEFAULT_SLAB_NNZ
from ..core.options import AOADMMOptions
from ..integrity import IntegrityError
from ..kernels.dispatch import configure_memoization, memoization_enabled
from ..observability import (
    Observability,
    add_hook,
    is_enabled,
    record_supervisor_event,
    remove_hook,
    span,
)
from ..parallel.executor import resolve_executor
from ..parallel.procpool import ProcessPoolBroken
from ..parallel.shm import ShmAllocationError
from ..validation import require
from .checkpoint import Checkpoint, CheckpointStore, CheckpointUnavailable
from .guards import GuardEvent, NumericalFaultError
from .retry import Backoff, RetryBudgetExceeded
from .watchdog import FitStalled, Watchdog

#: Smallest ``slab_nnz_target`` the degradation ladder will shrink to.
MIN_SLAB_NNZ = 1024


@dataclass(frozen=True)
class SupervisorOptions:
    """Configuration for :class:`FitSupervisor`.

    Attributes
    ----------
    max_attempts:
        Total fit attempts (first try included) before
        :class:`~repro.robustness.retry.RetryBudgetExceeded` escalates.
    backoff:
        Delay schedule between attempts (deterministic, no jitter — the
        process retries against its own machine, not a shared service).
    checkpoint_every:
        Checkpoint cadence imposed when the wrapped options do not
        already checkpoint; every completed iteration by default, so a
        recovery never repeats more than one iteration of work.
    keep_last:
        Checkpoint versions retained (see
        :class:`~repro.robustness.checkpoint.CheckpointStore`).
    workdir:
        Directory for supervisor-owned checkpoints when the wrapped
        options carry no ``checkpoint_path``; a temporary directory is
        created (and removed after an undisturbed success) when unset.
    watchdog:
        Arm the stall watchdog (on by default).
    stall_factor / min_stall_seconds / stall_window:
        Watchdog tuning — deadline multiple over the moving
        per-iteration estimate, deadline floor/startup grace, and the
        number of recent iterations in the estimate.
    degrade:
        Walk the degradation ladder on pool loss / memory pressure.
    install_signal_handlers:
        Install SIGTERM/SIGINT preemption handlers for the duration of
        :meth:`FitSupervisor.run` (only possible — and only attempted —
        from the main thread).
    sleep / clock:
        Injectable timing for tests.
    """

    max_attempts: int = 5
    backoff: Backoff = field(default_factory=lambda: Backoff(initial=0.05))
    checkpoint_every: int = 1
    keep_last: int = 3
    workdir: "str | Path | None" = None
    watchdog: bool = True
    stall_factor: float = 8.0
    min_stall_seconds: float = 5.0
    stall_window: int = 5
    degrade: bool = True
    install_signal_handlers: bool = True
    sleep: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        require(self.max_attempts >= 1, "max_attempts must be at least 1")
        require(self.checkpoint_every >= 1,
                "checkpoint_every must be positive")
        require(self.keep_last >= 1, "keep_last must be at least 1")


@dataclass
class SupervisorReport:
    """What happened across the supervised attempts (the audit trail)."""

    #: Fit attempts started (1 = clean first-try success).
    attempts: int = 0
    #: Stalls the watchdog declared and interrupted.
    stalls: int = 0
    #: Human-readable descriptions of ladder steps taken, in order.
    degradations: list[str] = field(default_factory=list)
    #: ``(attempt, exception repr)`` for every recovered failure.
    failures: list[tuple[int, str]] = field(default_factory=list)
    #: Iteration each retry resumed from (0 = restart from scratch).
    resumed_from: list[int] = field(default_factory=list)
    #: Checkpoint files quarantined as corrupt during recovery.
    quarantined: list[str] = field(default_factory=list)
    #: The run ended via graceful preemption (``stop_reason="preempted"``).
    preempted: bool = False
    #: Supervisor-emitted guard events (also merged into the trace).
    guard_events: list[GuardEvent] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        return bool(self.failures)


class DegradationLadder:
    """Steps an options object toward ever more conservative execution.

    Each :meth:`advance` call returns a fresh
    :class:`~repro.core.options.AOADMMOptions` one rung down, or
    ``None`` when exhausted.  Rung order: leave the process pool for
    threads, leave threads for serial, then shrink the MTTKRP slab
    target (halving toward :data:`MIN_SLAB_NNZ`), then switch kernel
    memoization off.  None of these change computed values — only
    resource footprint and speed.
    """

    def __init__(self, options: AOADMMOptions) -> None:
        self.options = options
        #: Descriptions of the steps taken so far.
        self.steps: list[str] = []

    def _executor_name(self) -> str:
        spec = self.options.executor
        if isinstance(spec, str):
            return spec
        if spec is None:
            return resolve_executor(None).name
        return getattr(spec, "name", "?")

    def advance(self) -> "AOADMMOptions | None":
        name = self._executor_name()
        if name == "process":
            self.options = replace(self.options, executor="thread")
            step = "executor process->thread"
        elif name == "thread":
            self.options = replace(self.options, executor="serial")
            step = "executor thread->serial"
        else:
            target = self.options.slab_nnz_target or DEFAULT_SLAB_NNZ
            if target > MIN_SLAB_NNZ:
                shrunk = max(MIN_SLAB_NNZ, target // 2)
                self.options = replace(self.options,
                                       slab_nnz_target=shrunk)
                step = f"slab_nnz_target {target}->{shrunk}"
            elif memoization_enabled():
                configure_memoization(False)
                step = "kernel memoization off"
            else:
                return None
        self.steps.append(step)
        return self.options


class FitSupervisor:
    """Run one AO-ADMM factorization to completion under faults.

    Parameters
    ----------
    tensor:
        The sparse tensor to factorize.
    options:
        The run configuration.  When it carries no ``checkpoint_path``
        the supervisor imposes its own (versioned, ``keep_last``
        retention, every-iteration cadence by default) in *workdir* or a
        temporary directory; a configured ``checkpoint_path`` is
        upgraded in place to the versioned store layout.
    supervisor:
        A :class:`SupervisorOptions`; defaults are production-ready.
    initial_factors:
        Optional explicit starting point (first attempt only; retries
        resume from checkpoints whenever one exists).
    resume_from:
        Continue a previously preempted/checkpointed run.

    Usage::

        result, report = FitSupervisor(tensor, options).run()
    """

    def __init__(self, tensor, options: AOADMMOptions | None = None,
                 supervisor: SupervisorOptions | None = None,
                 initial_factors: "list[np.ndarray] | None" = None,
                 resume_from: "str | Path | Checkpoint | None" = None):
        self.tensor = tensor
        self.supervisor = supervisor or SupervisorOptions()
        self.report = SupervisorReport()
        self._owned_workdir: Path | None = None
        self._preempt = threading.Event()
        self.options = self._prepare_options(options or AOADMMOptions())
        self.store = CheckpointStore(self.options.checkpoint_path,
                                     keep_last=self.options.checkpoint_keep_last)
        self._initial_factors = initial_factors
        self._resume_from = resume_from
        self._restored_memoization: bool | None = None

    # ------------------------------------------------------------------
    def _prepare_options(self, options: AOADMMOptions) -> AOADMMOptions:
        sup = self.supervisor
        updates: dict[str, object] = {}
        if options.checkpoint_path is None:
            if sup.workdir is not None:
                workdir = Path(sup.workdir)
                workdir.mkdir(parents=True, exist_ok=True)
            else:
                import tempfile
                workdir = Path(tempfile.mkdtemp(prefix="repro-supervised-"))
                self._owned_workdir = workdir
            updates["checkpoint_path"] = str(workdir / "supervised.npz")
        if options.checkpoint_every is None:
            updates["checkpoint_every"] = sup.checkpoint_every
        if options.checkpoint_keep_last is None:
            updates["checkpoint_keep_last"] = sup.keep_last
        if options.preempt_flag is None:
            updates["preempt_flag"] = self._preempt
        else:
            self._preempt = options.preempt_flag
        return replace(options, **updates) if updates else options

    def preempt(self) -> None:
        """Request graceful preemption (what the signal handlers call)."""
        self._preempt.set()

    # -- internal helpers ----------------------------------------------
    def _guard(self, kind: str, action: str, iteration: int,
               detail: str) -> GuardEvent:
        event = GuardEvent(iteration=iteration, kind=kind,
                           site="supervisor", action=action, detail=detail)
        self.report.guard_events.append(event)
        record_supervisor_event(kind, self.report.attempts, detail=detail)
        return event

    def _classify(self, exc: BaseException) -> "str | None":
        """``"degrade"`` / ``"retry"`` for transient failures, else None."""
        if isinstance(exc, (FitStalled, ProcessPoolBroken,
                            ShmAllocationError, MemoryError)):
            return "degrade"
        if isinstance(exc, NumericalFaultError):
            return None
        if isinstance(exc, IntegrityError):
            # A verified read detected damaged storage mid-fit.  The
            # evidence is quarantined; a retry resumes from the newest
            # checksum-valid checkpoint and re-reads (or rebuilds) the
            # slab — transient from the supervisor's point of view.
            return "retry"
        if isinstance(exc, OSError):
            return "retry"
        return None

    def _latest_checkpoint(self) -> "Checkpoint | None":
        try:
            checkpoint, _ = self.store.load_latest()
            return checkpoint
        except CheckpointUnavailable:
            self.report.quarantined = [str(p) for p
                                       in self.store.quarantined]
            return None
        finally:
            self.report.quarantined = [str(p) for p
                                       in self.store.quarantined]

    def _install_signal_handlers(self):
        if not self.supervisor.install_signal_handlers:
            return None
        if threading.current_thread() is not threading.main_thread():
            return None
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(
                    signum, lambda *_args: self.preempt())
            except (ValueError, OSError):  # pragma: no cover - exotic env
                pass
        return previous

    @staticmethod
    def _restore_signal_handlers(previous) -> None:
        if not previous:
            return
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _cleanup_workdir(self) -> None:
        if self._owned_workdir is None:
            return
        import shutil
        shutil.rmtree(self._owned_workdir, ignore_errors=True)
        self._owned_workdir = None

    # ------------------------------------------------------------------
    def run(self):
        """Drive attempts until success, preemption, or budget exhaustion.

        Returns ``(FactorizationResult, SupervisorReport)``.  Raises
        :class:`~repro.robustness.retry.RetryBudgetExceeded` when every
        attempt failed transiently, or the original exception when a
        non-transient fault (e.g. a numerical guard) fires.
        """
        from ..core.aoadmm import fit_aoadmm  # deferred: import cycle

        sup = self.supervisor
        self._restored_memoization = memoization_enabled()
        ladder = DegradationLadder(self.options)
        previous_handlers = self._install_signal_handlers()
        forced_obs = None
        if sup.watchdog and not is_enabled():
            # Heartbeats ride the observability "iteration" events,
            # which only flow while a registry is enabled; activate a
            # private handle rather than silently running watchdog-less.
            forced_obs = Observability(enabled=True).activate()
            forced_obs.__enter__()
        resume: "str | Path | Checkpoint | None" = self._resume_from
        last_exc: BaseException | None = None

        def integrity_hook(event, payload):
            # Storage-integrity incidents (quarantine, rebuild, payload
            # mismatch) become supervisor guard events, so a fit whose
            # slab was rebuilt mid-run carries the evidence in its
            # trace.  Scrubs are routine reads — too chatty to log.
            if event == "integrity" and payload.get("kind") != "scrub":
                self._guard(f"integrity_{payload.get('kind', '')}",
                            "observe", 0,
                            f"{payload.get('artifact', '')}: "
                            f"{payload.get('detail', '')}")

        add_hook(integrity_hook)
        try:
            for attempt in range(1, sup.max_attempts + 1):
                self.report.attempts = attempt
                watchdog = None
                hook = None
                if sup.watchdog:
                    watchdog = Watchdog(
                        stall_factor=sup.stall_factor,
                        min_deadline_seconds=sup.min_stall_seconds,
                        window=sup.stall_window)

                    def hook(event, payload, _wd=watchdog):
                        if event == "iteration" \
                                and payload.get("scope") == "aoadmm":
                            _wd.beat()

                    add_hook(hook)
                    watchdog.start()
                try:
                    with span("supervisor.attempt", attempt=attempt):
                        result = fit_aoadmm(
                            self.tensor, ladder.options,
                            initial_factors=(self._initial_factors
                                             if resume is None else None),
                            resume_from=resume)
                except BaseException as exc:
                    action = self._classify(exc)
                    if action is None or attempt == sup.max_attempts:
                        if action is not None:
                            raise RetryBudgetExceeded(attempt, exc) from exc
                        raise
                    last_exc = exc
                    self.report.failures.append((attempt, repr(exc)))
                    if isinstance(exc, FitStalled):
                        self.report.stalls += 1
                    checkpoint = self._latest_checkpoint()
                    resume = checkpoint
                    resumed_at = checkpoint.iteration if checkpoint else 0
                    self.report.resumed_from.append(resumed_at)
                    kind = ("stall" if isinstance(exc, FitStalled)
                            else "retry")
                    self._guard(kind, "retry", resumed_at,
                                f"attempt {attempt} failed with "
                                f"{type(exc).__name__}: {exc}; resuming "
                                f"from iteration {resumed_at}")
                    if action == "degrade" and sup.degrade:
                        degraded = ladder.advance()
                        if degraded is not None:
                            step = ladder.steps[-1]
                            self.report.degradations.append(step)
                            self._guard("degrade", "degrade", resumed_at,
                                        step)
                    self._guard("resume" if checkpoint else "restart",
                                "resume", resumed_at,
                                f"backing off "
                                f"{sup.backoff.delay(attempt):.3f}s before "
                                f"attempt {attempt + 1}")
                    sup.sleep(sup.backoff.delay(attempt))
                    continue
                finally:
                    if watchdog is not None:
                        watchdog.stop()
                        remove_hook(hook)

                # Success (or graceful preemption) — annotate and return.
                if result.stop_reason == "preempted":
                    self.report.preempted = True
                    self._guard("preempted", "checkpoint",
                                len(result.trace),
                                f"preempted after iteration "
                                f"{len(result.trace)}; resume from "
                                f"{self.options.checkpoint_path}")
                result.trace.guard_log.extend(self.report.guard_events)
                if not self.report.preempted:
                    # Preempted runs keep their checkpoints (that is the
                    # whole point); completed ones release the
                    # supervisor-owned scratch directory.
                    self._cleanup_workdir()
                return result, self.report
            raise RetryBudgetExceeded(sup.max_attempts,
                                      last_exc)  # pragma: no cover
        finally:
            remove_hook(integrity_hook)
            if forced_obs is not None:
                forced_obs.__exit__(None, None, None)
            self._restore_signal_handlers(previous_handlers)
            if self._restored_memoization is not None:
                configure_memoization(self._restored_memoization)


def supervise_fit(tensor, options: AOADMMOptions | None = None,
                  supervisor: SupervisorOptions | None = None,
                  initial_factors: "list[np.ndarray] | None" = None,
                  resume_from: "str | Path | Checkpoint | None" = None):
    """One-call form of :class:`FitSupervisor`; returns (result, report)."""
    return FitSupervisor(tensor, options, supervisor=supervisor,
                         initial_factors=initial_factors,
                         resume_from=resume_from).run()
