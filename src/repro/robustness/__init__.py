"""Fault tolerance for long factorization runs.

The paper's Table 1 workloads run for hundreds of outer iterations; a
single non-finite value escaping a kernel, or a crash at iteration 190,
must not cost the whole run.  This package supplies five layers:

* :mod:`repro.robustness.guards` — the :class:`HealthMonitor` numerical
  guards wired into the AO-ADMM driver (NaN/Inf detection, objective
  divergence) with ``raise`` / ``rollback`` / ``repair`` policies;
* :mod:`repro.robustness.checkpoint` — periodic full-state checkpoints
  and bit-identical resume (``fit_aoadmm(..., resume_from=...)``), plus
  the versioned :class:`CheckpointStore` with retention and corrupt-file
  quarantine;
* :mod:`repro.robustness.retry` — deterministic retry/backoff/deadline
  primitives for transient failures;
* :mod:`repro.robustness.watchdog` — the heartbeat watchdog that detects
  and interrupts stalled fits;
* :mod:`repro.robustness.supervisor` — :class:`FitSupervisor`, which
  composes all of the above (plus a degradation ladder and graceful
  SIGTERM/SIGINT preemption) so a fit completes without caller
  intervention under worker-kill storms, stalls, corrupted checkpoints,
  and shared-memory exhaustion — surfaced as
  ``repro.fit(..., supervise=True)``;
* :mod:`repro.robustness.faults` — a deterministic fault-injection
  harness used by ``tests/test_robustness.py`` and
  ``tests/test_supervisor.py`` to prove every guard and recovery path
  actually fires.
"""

from .guards import (
    GUARD_POLICIES,
    GuardEvent,
    HealthMonitor,
    NumericalFaultError,
)
from .checkpoint import (
    Checkpoint,
    CheckpointStore,
    CheckpointUnavailable,
    load_checkpoint,
    resolve_resume,
    save_checkpoint,
    verify_checkpoint,
)
from .retry import (
    Backoff,
    Deadline,
    RetryBudgetExceeded,
    RetryPolicy,
)
from .watchdog import FitStalled, Watchdog
from .supervisor import (
    DegradationLadder,
    FitSupervisor,
    SupervisorOptions,
    SupervisorReport,
    supervise_fit,
)
from .faults import (
    STORAGE_FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    InjectedCrash,
    ShardCrashPlan,
    SlabFaultRecord,
    SlabFaultSpec,
    WorkerFault,
    WorkerFaultPlan,
    WorkerKillPlan,
    inject_slab_fault,
)

__all__ = [
    "GUARD_POLICIES",
    "GuardEvent",
    "HealthMonitor",
    "NumericalFaultError",
    "Checkpoint",
    "CheckpointStore",
    "CheckpointUnavailable",
    "load_checkpoint",
    "resolve_resume",
    "save_checkpoint",
    "verify_checkpoint",
    "Backoff",
    "Deadline",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "FitStalled",
    "Watchdog",
    "DegradationLadder",
    "FitSupervisor",
    "SupervisorOptions",
    "SupervisorReport",
    "supervise_fit",
    "FaultInjector",
    "FaultSpec",
    "InjectedCrash",
    "STORAGE_FAULT_KINDS",
    "ShardCrashPlan",
    "SlabFaultRecord",
    "SlabFaultSpec",
    "WorkerFault",
    "WorkerFaultPlan",
    "WorkerKillPlan",
    "inject_slab_fault",
]
