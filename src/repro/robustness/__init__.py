"""Fault tolerance for long factorization runs.

The paper's Table 1 workloads run for hundreds of outer iterations; a
single non-finite value escaping a kernel, or a crash at iteration 190,
must not cost the whole run.  This package supplies three layers:

* :mod:`repro.robustness.guards` — the :class:`HealthMonitor` numerical
  guards wired into the AO-ADMM driver (NaN/Inf detection, objective
  divergence) with ``raise`` / ``rollback`` / ``repair`` policies;
* :mod:`repro.robustness.checkpoint` — periodic full-state checkpoints
  and bit-identical resume (``fit_aoadmm(..., resume_from=...)``);
* :mod:`repro.robustness.faults` — a deterministic fault-injection
  harness used by ``tests/test_robustness.py`` to prove every guard
  actually fires.
"""

from .guards import (
    GUARD_POLICIES,
    GuardEvent,
    HealthMonitor,
    NumericalFaultError,
)
from .checkpoint import (
    Checkpoint,
    load_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)
from .faults import (
    FaultInjector,
    FaultSpec,
    WorkerFault,
    WorkerFaultPlan,
    WorkerKillPlan,
)

__all__ = [
    "GUARD_POLICIES",
    "GuardEvent",
    "HealthMonitor",
    "NumericalFaultError",
    "Checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "verify_checkpoint",
    "FaultInjector",
    "FaultSpec",
    "WorkerFault",
    "WorkerFaultPlan",
    "WorkerKillPlan",
]
