"""Shared-memory parallel runtime (the OpenMP role in the paper's stack).

Pure scheduling logic lives in :mod:`repro.parallel.schedule` — it is used
both by the real thread pool and by the simulated machine, so the machine
model schedules exactly the work distribution the real runtime would.
"""

from .partition import row_blocks, balanced_chunks, block_of_row
from .schedule import (
    StaticSchedule,
    DynamicSchedule,
    GuidedSchedule,
    ScheduleOutcome,
    run_schedule,
)
from .threadpool import parallel_for, effective_threads

__all__ = [
    "row_blocks",
    "balanced_chunks",
    "block_of_row",
    "StaticSchedule",
    "DynamicSchedule",
    "GuidedSchedule",
    "ScheduleOutcome",
    "run_schedule",
    "parallel_for",
    "effective_threads",
]
