"""Shared-memory parallel runtime (the OpenMP role in the paper's stack).

Pure scheduling logic lives in :mod:`repro.parallel.schedule` — it is used
both by the real executors and by the simulated machine, so the machine
model schedules exactly the work distribution the real runtime would.

Execution backends live in :mod:`repro.parallel.executor` (``serial`` /
``thread`` / ``process``, selected via ``REPRO_EXECUTOR``); the process
backend is built on :mod:`repro.parallel.shm` (shared-memory array
plane), :mod:`repro.parallel.procpool` (persistent crash-tolerant worker
pool), and :mod:`repro.parallel.shm_worker` (slab task execution).
"""

from .executor import (
    DEFAULT_EXECUTOR,
    EXECUTOR_ENV_VAR,
    EXECUTOR_NAMES,
    ExecutorBase,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
    resolve_executor,
    shutdown_executors,
)
from .partition import row_blocks, balanced_chunks, block_of_row
from .procpool import ProcessPool, ProcessPoolBroken, WorkerTaskError
from .schedule import (
    StaticSchedule,
    DynamicSchedule,
    GuidedSchedule,
    ScheduleOutcome,
    run_schedule,
)
from .shm import (
    ShmAllocationError,
    ShmArena,
    ShmArrayHandle,
    active_segment_names,
    stale_segment_names,
    sweep_stale_segments,
)
from .threadpool import parallel_for, effective_threads

__all__ = [
    "row_blocks",
    "balanced_chunks",
    "block_of_row",
    "StaticSchedule",
    "DynamicSchedule",
    "GuidedSchedule",
    "ScheduleOutcome",
    "run_schedule",
    "parallel_for",
    "effective_threads",
    "DEFAULT_EXECUTOR",
    "EXECUTOR_ENV_VAR",
    "EXECUTOR_NAMES",
    "ExecutorBase",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ProcessPool",
    "ProcessPoolBroken",
    "WorkerTaskError",
    "ShmAllocationError",
    "ShmArena",
    "ShmArrayHandle",
    "active_segment_names",
    "stale_segment_names",
    "sweep_stale_segments",
    "get_executor",
    "resolve_executor",
    "shutdown_executors",
]
