"""Shared-memory array plane for the process-pool executor.

The process executor ships *no* array data through task pickles: every
large operand — the per-mode CSF index/value arrays, the factor
matrices, the output and per-node product buffers — lives in
:mod:`multiprocessing.shared_memory` segments created by the parent and
attached read/write by the persistent workers.  A task then pickles as a
handful of :class:`ShmArrayHandle` records (segment name + offset +
shape + dtype — a few hundred bytes), which is what makes per-call
dispatch cheap enough to amortize over a single MTTKRP.

Layout
------
:class:`ShmArena` is the owner-side registry.  ``put_group`` packs a
named family of arrays (one CSF tree's ``fids``/``fptr``/``vals``) into
**one** segment with 64-byte-aligned offsets; ``allocate`` carves a
standalone segment for a buffer the parent reads back (MTTKRP outputs,
per-node product buffers); ``update`` refreshes contents in place when
shape/dtype still match (the factor matrices, every call) and
transparently re-segments otherwise.  All segments carry the
``repro_shm_`` name prefix so leak checks can find strays, and every
arena is tracked in a module registry torn down at interpreter exit.

Worker side, :func:`attach` maps a handle back to an ndarray view
through a process-local segment cache.  Pool workers share the parent's
``resource_tracker`` (the tracker fd travels with fork/spawn), so the
re-registration Python < 3.13 performs on attach (bpo-38119) is an
idempotent set-add, and only the creating arena ever unlinks.

Cleanup guarantee: ``close()`` (or arena garbage collection, or the
``atexit`` sweep) unmaps and unlinks every segment the arena created —
``tests/test_executor.py`` and the CI executor job assert that no
``/dev/shm/repro_shm_*`` entry survives the suite.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import os
import re as re_module
import secrets
import threading
import warnings
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

#: Name prefix of every segment this module creates (leak-check key).
SEGMENT_PREFIX = "repro_shm_"

#: Offset alignment inside packed segments (cache-line friendly).
_ALIGN = 64

_counter = itertools.count()
_token = secrets.token_hex(4)


class ShmAllocationError(MemoryError):
    """Creating a shared-memory segment failed (``/dev/shm`` pressure).

    Raised by :meth:`ShmArena._new_segment` with the original ``OSError``
    / ``MemoryError`` chained.  Subclasses :class:`MemoryError` so the
    supervisor's retry policy classifies it as transient memory pressure
    and steps the degradation ladder (smaller slabs, in-process
    executor) instead of aborting the fit.
    """


def _segment_name() -> str:
    """A unique, recognizable segment name (< 31 chars for POSIX shm)."""
    return f"{SEGMENT_PREFIX}{os.getpid():x}_{_token}_{next(_counter):x}"


@dataclass(frozen=True)
class ShmArrayHandle:
    """A picklable reference to an ndarray living in a shared segment."""

    segment: str
    offset: int
    shape: tuple[int, ...]
    #: ``dtype.str`` (endianness-qualified) so the handle pickles small.
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)
                   * np.dtype(self.dtype).itemsize)


def _view(buf: memoryview, handle: ShmArrayHandle) -> np.ndarray:
    arr = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype),
                     buffer=buf, offset=handle.offset)
    return arr


# ----------------------------------------------------------------------
# Owner side
# ----------------------------------------------------------------------

_LIVE_ARENAS: "weakref.WeakSet[ShmArena]" = weakref.WeakSet()


class ShmArena:
    """Owner-side registry of shared segments and the arrays inside them.

    One arena per :class:`~repro.kernels.dispatch.MTTKRPEngine`; closing
    the arena releases every segment it created.  Thread-safe: the
    engine may be driven from worker threads (blocked ADMM).
    """

    def __init__(self, tag: str = "arena") -> None:
        self.tag = tag
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._handles: dict[object, ShmArrayHandle] = {}
        self._arrays: dict[object, np.ndarray] = {}
        self._lock = threading.RLock()
        self.closed = False
        #: Bytes of shared memory this arena has ever mapped (cumulative).
        self.bytes_mapped = 0
        #: Bytes of shared memory currently live (mapped minus dropped).
        self.bytes_live = 0
        #: Reference count per segment — content-deduplicated groups
        #: share one segment, which is unlinked only when the last
        #: group referencing it is dropped.
        self._segment_refs: dict[str, int] = {}
        #: Content digest -> (segment name, packed handles) for group
        #: deduplication: two groups with byte-identical arrays share
        #: one segment instead of mapping the same bytes twice.
        self._group_digests: dict[str, tuple[str, dict]] = {}
        #: Digest of each live group key (for drop/dedup bookkeeping).
        self._group_digest_of: dict[object, str] = {}
        #: Segments whose bytes are *also* resident in the out-of-core
        #: slab budget (``max_bytes_in_core``); excluded from
        #: :meth:`billable_bytes` so the two budgets compose instead of
        #: double-counting the same non-zeros.
        self._shard_segments: set[str] = set()
        _LIVE_ARENAS.add(self)
        self._finalizer = weakref.finalize(self, _finalize_segments,
                                           self._segments)

    # -- creation ------------------------------------------------------
    def _new_segment(self, nbytes: int) -> shared_memory.SharedMemory:
        try:
            seg = shared_memory.SharedMemory(
                create=True, size=max(int(nbytes), 1), name=_segment_name())
        except (OSError, MemoryError) as exc:
            raise ShmAllocationError(
                f"could not map {nbytes} shared bytes for "
                f"ShmArena({self.tag!r}): {exc}") from exc
        self._segments[seg.name] = seg
        self.bytes_mapped += seg.size
        self.bytes_live += seg.size
        self._segment_refs[seg.name] = 1
        return seg

    @staticmethod
    def _group_digest(prepared: dict[str, np.ndarray]) -> str:
        """Content address of a packed group (names + dtypes + bytes)."""
        digest = hashlib.sha1()
        for name, arr in prepared.items():
            digest.update(name.encode())
            digest.update(str(arr.dtype).encode())
            digest.update(str(arr.shape).encode())
            digest.update(arr.data if arr.flags.c_contiguous
                          else arr.tobytes())
        return digest.hexdigest()

    def put_group(self, key: object,
                  arrays: dict[str, np.ndarray]) -> dict[str, ShmArrayHandle]:
        """Pack *arrays* into one segment; returns per-name handles.

        Contents are copied once (the CSF pattern is static for the
        whole factorization).  Calling again with the same *key* returns
        the cached handles without re-copying, and a *different* key
        whose arrays are byte-identical to an already-packed group
        shares that group's segment (content-addressed dedup, refcounted
        by :meth:`drop_group`) instead of mapping the bytes twice.
        """
        with self._lock:
            self._check_open()
            cached = self._handles.get(("group", key))
            if cached is not None:
                return cached  # type: ignore[return-value]
            prepared = {name: np.ascontiguousarray(arr)
                        for name, arr in arrays.items()}
            digest = self._group_digest(prepared)
            dedup = self._group_digests.get(digest)
            if dedup is not None and dedup[0] in self._segments:
                seg_name, handles = dedup
                self._segment_refs[seg_name] += 1
                seg = self._segments[seg_name]
                for name, handle in handles.items():
                    self._arrays[("group", key, name)] = _view(seg.buf,
                                                               handle)
                self._handles[("group", key)] = handles  # type: ignore[assignment]
                self._group_digest_of[key] = digest
                return handles
            total = 0
            for arr in prepared.values():
                total = -(-total // _ALIGN) * _ALIGN + arr.nbytes
            seg = self._new_segment(total)
            handles: dict[str, ShmArrayHandle] = {}
            offset = 0
            for name, arr in prepared.items():
                offset = -(-offset // _ALIGN) * _ALIGN
                handle = ShmArrayHandle(seg.name, offset,
                                        tuple(arr.shape), arr.dtype.str)
                view = _view(seg.buf, handle)
                view[...] = arr
                handles[name] = handle
                self._arrays[("group", key, name)] = view
                offset += arr.nbytes
            self._handles[("group", key)] = handles  # type: ignore[assignment]
            self._group_digests[digest] = (seg.name, handles)
            self._group_digest_of[key] = digest
            return handles

    def drop_group(self, key: object) -> None:
        """Release the group under *key* (refcounted; no-op if absent).

        The shared segment is unlinked only when the last group
        referencing it is dropped — content-deduplicated siblings keep
        it alive.
        """
        with self._lock:
            handles = self._handles.pop(("group", key), None)
            if handles is None:
                return
            for name in list(handles):
                self._arrays.pop(("group", key, name), None)
            digest = self._group_digest_of.pop(key, None)
            seg_name = next(iter(handles.values())).segment
            refs = self._segment_refs.get(seg_name, 1) - 1
            if refs > 0:
                self._segment_refs[seg_name] = refs
                return
            if digest is not None:
                self._group_digests.pop(digest, None)
            self._drop_segment(seg_name)

    # -- shard-residency accounting ------------------------------------
    def mark_shard_resident(self, key: object,
                            resident: bool = True) -> None:
        """Flag the group under *key* as backed by out-of-core slab bytes.

        A shard-resident group's bytes are already counted against the
        slab cache's ``max_bytes_in_core`` (the shared copy exists only
        so workers can attach); :meth:`billable_bytes` excludes them so
        the shm budget and the slab budget compose instead of charging
        the same non-zeros twice.
        """
        with self._lock:
            handles = self._handles.get(("group", key))
            if handles is None:
                return
            seg_name = next(iter(handles.values())).segment
            if resident:
                self._shard_segments.add(seg_name)
            else:
                self._shard_segments.discard(seg_name)

    @property
    def shard_resident_bytes(self) -> int:
        """Live bytes whose contents the slab budget already accounts for."""
        with self._lock:
            return sum(self._segments[name].size
                       for name in self._shard_segments
                       if name in self._segments)

    def billable_bytes(self) -> int:
        """Live shared bytes chargeable to the shm budget alone."""
        with self._lock:
            return self.bytes_live - self.shard_resident_bytes

    def allocate(self, key: object, shape: tuple[int, ...],
                 dtype: np.dtype) -> np.ndarray:
        """A shared buffer the parent reads back (own segment per key).

        Reuses the existing segment while shape/dtype match; otherwise
        the old segment is unlinked and a fresh one mapped (so stale
        worker-side attachments can never alias a resized buffer).
        """
        dtype = np.dtype(dtype)
        with self._lock:
            self._check_open()
            handle = self._handles.get(key)
            if handle is not None and handle.shape == tuple(shape) \
                    and handle.dtype == dtype.str:
                return self._arrays[key]
            if handle is not None:
                self._drop_segment(handle.segment)
            nbytes = int(np.prod(shape, dtype=np.int64) * dtype.itemsize)
            seg = self._new_segment(nbytes)
            handle = ShmArrayHandle(seg.name, 0, tuple(shape), dtype.str)
            self._handles[key] = handle
            self._arrays[key] = _view(seg.buf, handle)
            return self._arrays[key]

    def update(self, key: object, array: np.ndarray) -> ShmArrayHandle:
        """Copy *array* into the shared buffer for *key* (realloc on resize)."""
        array = np.asarray(array)
        buf = self.allocate(key, tuple(array.shape), array.dtype)
        np.copyto(buf, array)
        return self._handles[key]

    # -- lookup --------------------------------------------------------
    def handle(self, key: object) -> ShmArrayHandle:
        """The handle registered under *key* (allocate/update keys only)."""
        return self._handles[key]

    def array(self, key: object) -> np.ndarray:
        """The parent-side view registered under *key*."""
        return self._arrays[key]

    def has(self, key: object) -> bool:
        return key in self._handles or ("group", key) in self._handles

    # -- teardown ------------------------------------------------------
    def _drop_segment(self, name: str) -> None:
        seg = self._segments.pop(name, None)
        if seg is None:
            return
        stale = [k for k, h in self._handles.items()
                 if isinstance(h, ShmArrayHandle) and h.segment == name]
        for k in stale:
            self._handles.pop(k, None)
            self._arrays.pop(k, None)
        self.bytes_live -= seg.size
        self._segment_refs.pop(name, None)
        self._shard_segments.discard(name)
        for digest, (seg_name, _) in list(self._group_digests.items()):
            if seg_name == name:
                self._group_digests.pop(digest, None)
        _release_segment(seg)

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError(f"ShmArena({self.tag!r}) is closed")

    def close(self) -> None:
        """Unmap and unlink every segment this arena created (idempotent)."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            self._arrays.clear()
            self._handles.clear()
            self._segment_refs.clear()
            self._group_digests.clear()
            self._group_digest_of.clear()
            self._shard_segments.clear()
            self.bytes_live = 0
            segments, self._segments = dict(self._segments), {}
            self._finalizer.detach()
        for seg in segments.values():
            _release_segment(seg)

    def segment_names(self) -> list[str]:
        """Names of the live segments (leak-check support)."""
        with self._lock:
            return sorted(self._segments)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _release_segment(seg: shared_memory.SharedMemory) -> None:
    try:
        seg.close()
    except OSError:  # pragma: no cover - already unmapped
        pass
    try:
        seg.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


def _finalize_segments(segments: dict[str, shared_memory.SharedMemory]
                       ) -> None:
    """GC/exit fallback when an arena was never explicitly closed."""
    for seg in list(segments.values()):
        _release_segment(seg)
    segments.clear()


def active_segment_names() -> list[str]:
    """Every segment name still held by a live arena (leak check)."""
    names: list[str] = []
    for arena in list(_LIVE_ARENAS):
        if not arena.closed:
            names.extend(arena.segment_names())
    return sorted(names)


@atexit.register
def _atexit_sweep() -> None:  # pragma: no cover - interpreter teardown
    for arena in list(_LIVE_ARENAS):
        try:
            arena.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Stale-segment sweeper (orphans from killed interpreters)
# ----------------------------------------------------------------------

#: Where POSIX shared memory surfaces as files (Linux).
_SHM_DIR = Path("/dev/shm")

#: Segment-name shape: prefix + creator pid (hex) + token + counter.
_SEGMENT_NAME_RE = re_module.compile(
    re_module.escape(SEGMENT_PREFIX) + r"([0-9a-f]+)_[0-9a-f]+_[0-9a-f]+$")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    return True


def stale_segment_names() -> list[str]:
    """``repro_shm_*`` segments whose creating interpreter is gone.

    A SIGKILLed parent never runs its ``atexit`` sweep, so its segments
    survive as orphans in ``/dev/shm`` — real memory held until reboot.
    Every segment name embeds the creator's pid, so orphans are
    decidable: a dead creator can never unlink its segment again.
    Segments of live processes (including our own) are never listed.
    """
    if not _SHM_DIR.is_dir():  # pragma: no cover - non-Linux
        return []
    own = os.getpid()
    stale = []
    for entry in sorted(_SHM_DIR.glob(SEGMENT_PREFIX + "*")):
        match = _SEGMENT_NAME_RE.match(entry.name)
        if match is None:
            continue
        pid = int(match.group(1), 16)
        if pid == own or _pid_alive(pid):
            continue
        stale.append(entry.name)
    return stale


def sweep_stale_segments() -> list[str]:
    """Unlink every stale segment; returns the names removed.

    Called on process-executor startup (and by ``python -m
    repro.parallel --sweep-shm``).  Emits a single ``RuntimeWarning``
    per sweep naming what was reclaimed — loud enough to notice a
    crashing neighbour, quiet enough not to spam a worker fleet.
    """
    removed = []
    for name in stale_segment_names():
        try:
            (_SHM_DIR / name).unlink()
        except FileNotFoundError:  # pragma: no cover - concurrent sweep
            continue
        except OSError:  # pragma: no cover - permissions
            continue
        removed.append(name)
    if removed:
        warnings.warn(
            f"swept {len(removed)} orphaned shared-memory segment(s) "
            f"left by dead processes: {', '.join(removed[:5])}"
            + ("..." if len(removed) > 5 else ""),
            RuntimeWarning, stacklevel=2)
    return removed


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Process-local attachment cache: segment name -> SharedMemory.  Kept
#: for the worker's whole life — segments are named uniquely, so a
#: reallocated buffer always arrives under a fresh name.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    seg = _ATTACHED.get(name)
    if seg is None:
        # Python < 3.13 re-registers the segment with the resource
        # tracker on attach (bpo-38119).  Pool workers share the
        # *parent's* tracker (the fd travels with fork/spawn), so the
        # duplicate registration is an idempotent set-add — harmless.
        # Unregistering here would instead erase the parent's entry and
        # make the owning arena's ``unlink`` trip the tracker.
        seg = shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = seg
    return seg


def attach(handle: ShmArrayHandle) -> np.ndarray:
    """Worker-side ndarray view for *handle* (cached per segment)."""
    return _view(_attach_segment(handle.segment).buf, handle)


def detach_all() -> None:
    """Drop the worker-side attachment cache (tests / worker shutdown)."""
    for seg in _ATTACHED.values():
        try:
            seg.close()
        except OSError:  # pragma: no cover - already unmapped
            pass
    _ATTACHED.clear()
