"""A minimal thread-pool ``parallel_for``.

When threads help — and when they don't
---------------------------------------
CPython threads share the GIL, so a thread pool only overlaps work that
*releases* it.  NumPy releases the GIL inside individual kernels, which
is enough for coarse-grained work dominated by large BLAS calls (the
blocked-ADMM row blocks: one big Cholesky/GEMM per block).  It is **not**
enough for the slab MTTKRP kernels: each slab is a chain of many small
``take`` / ``multiply`` / ``reduceat`` calls, and the interpreter
re-acquires the GIL between every one of them, so threads serialize on
dispatch and add contention on top.  ``BENCH_mttkrp_tiled.json`` measures
exactly that — the 139-slab sweep runs 94.7 ms on 1 thread and 133.6 ms
on 4.  For genuinely parallel slab execution use the process executor
(``REPRO_EXECUTOR=process``; see :mod:`repro.parallel.executor` and
``docs/parallelism.md``), which sidesteps the GIL with a shared-memory
worker pool and stays bit-identical to this path.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, TypeVar

T = TypeVar("T")
R = TypeVar("R")

_ENV_VAR = "REPRO_NUM_THREADS"

#: Malformed ``REPRO_NUM_THREADS`` values already warned about (warn
#: once per value, not once per call).
_WARNED_ENV_VALUES: set[str] = set()


def effective_threads(requested: int | None = None) -> int:
    """Resolve a thread count: argument, env var, then CPU count.

    A malformed ``REPRO_NUM_THREADS`` (non-integer, or < 1) used to be
    silently ignored; it now emits a ``RuntimeWarning`` once per value
    before falling through to the CPU count.
    """
    if requested is not None and requested > 0:
        return int(requested)
    env = os.environ.get(_ENV_VAR)
    if env:
        try:
            value = int(env)
        except ValueError:
            value = None
        if value is not None and value > 0:
            return value
        if env not in _WARNED_ENV_VALUES:
            _WARNED_ENV_VALUES.add(env)
            warnings.warn(
                f"ignoring malformed {_ENV_VAR}={env!r} (expected a "
                f"positive integer); falling back to the CPU count",
                RuntimeWarning, stacklevel=2)
    return os.cpu_count() or 1


def parallel_for(func: Callable[[T], R], items: Iterable[T],
                 threads: int | None = None) -> list[R]:
    """Apply *func* to every item, possibly across a thread pool.

    *items* may be any iterable (generators included — it is normalized
    with one ``list()`` up front).  Results are returned in input order.
    With one thread (or at most one item) the loop runs inline — no
    executor overhead, identical semantics.
    """
    items = list(items)
    threads = effective_threads(threads)
    if threads == 1 or len(items) <= 1:
        return [func(item) for item in items]
    with ThreadPoolExecutor(max_workers=threads) as pool:
        return list(pool.map(func, items))
