"""A minimal thread-pool ``parallel_for``.

NumPy releases the GIL inside its kernels, so independent row-block work
(blocked ADMM) genuinely overlaps on multicore hosts.  On this project's
reference container (1 core) the pool still exercises the same code paths;
the scalability *measurements* come from the machine model instead
(:mod:`repro.machine`), which replays the identical work decomposition.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

_ENV_VAR = "REPRO_NUM_THREADS"


def effective_threads(requested: int | None = None) -> int:
    """Resolve a thread count: argument, env var, then CPU count."""
    if requested is not None and requested > 0:
        return int(requested)
    env = os.environ.get(_ENV_VAR)
    if env:
        try:
            value = int(env)
            if value > 0:
                return value
        except ValueError:
            pass
    return os.cpu_count() or 1


def parallel_for(func: Callable[[T], R], items: Sequence[T],
                 threads: int | None = None) -> list[R]:
    """Apply *func* to every item, possibly across a thread pool.

    Results are returned in input order.  With one thread (or one item)
    the loop runs inline — no executor overhead, identical semantics.
    """
    threads = effective_threads(threads)
    if threads == 1 or len(items) <= 1:
        return [func(item) for item in items]
    with ThreadPoolExecutor(max_workers=threads) as pool:
        return list(pool.map(func, items))
