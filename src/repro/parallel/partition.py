"""Work partitioning: row blocks and weight-balanced contiguous chunks."""

from __future__ import annotations

import numpy as np

from ..validation import require


def row_blocks(n_rows: int, block_size: int) -> list[slice]:
    """Split ``range(n_rows)`` into contiguous blocks of *block_size* rows.

    The final block may be short.  ``block_size <= 0`` or
    ``block_size >= n_rows`` yields a single block (the unblocked limit).
    """
    require(n_rows >= 0, "n_rows must be non-negative")
    if n_rows == 0:
        return []
    if block_size <= 0 or block_size >= n_rows:
        return [slice(0, n_rows)]
    return [slice(start, min(start + block_size, n_rows))
            for start in range(0, n_rows, block_size)]


def block_of_row(row: int, block_size: int) -> int:
    """Index of the block containing *row* (for diagnostics)."""
    require(row >= 0 and block_size > 0, "invalid row/block size")
    return row // block_size


def balanced_chunks(weights: np.ndarray, n_chunks: int) -> list[slice]:
    """Split a weight vector into contiguous chunks of near-equal mass.

    Greedy prefix splitting at multiples of ``total / n_chunks`` — the
    static decomposition used for MTTKRP slices when non-zero counts are
    skewed.  Returns at most *n_chunks* non-empty slices.
    """
    weights = np.asarray(weights, dtype=np.float64)
    require(n_chunks >= 1, "need at least one chunk")
    n = weights.shape[0]
    if n == 0:
        return []
    if n_chunks == 1:
        return [slice(0, n)]
    prefix = np.cumsum(weights)
    total = prefix[-1]
    if total <= 0:
        return row_blocks(n, -(-n // n_chunks))
    targets = total * np.arange(1, n_chunks, dtype=np.float64) / n_chunks
    cuts = np.searchsorted(prefix, targets, side="left") + 1
    bounds = np.unique(np.r_[0, cuts, n])
    return [slice(int(bounds[i]), int(bounds[i + 1]))
            for i in range(len(bounds) - 1)
            if bounds[i + 1] > bounds[i]]
