"""Worker-side MTTKRP slab execution (runs inside pool processes).

The parent never pickles arrays: a batch payload carries
:class:`~repro.parallel.shm.ShmArrayHandle` records for one CSF tree's
level arrays, the factor matrices, and the shared target buffer, plus a
list of ``(slab_index, node_ranges)`` descriptors.  This module attaches
the segments, rebuilds each slab as a :class:`~repro.tensor.csf.CSFTensor`
view — *exactly* the arrays :func:`repro.tensor.tiling._make_slab`
produces, byte for byte — and runs the **same** sweep functions the
thread executor runs (:func:`repro.kernels.mttkrp_csf._slab_upward` /
``_slab_downward``).  Same operands, same operation order, same dtypes
⇒ bit-identical node values; the slabs write fully-overwritten disjoint
ranges of the target, and the parent performs the one deterministic
scatter.  That is the whole determinism argument, and it is what lets
the differential harness hold thread and process executors to *bitwise*
family anchors.

Everything static is cached per tree (keyed by the tree group's segment
name, which is unique per arena): attached arrays, rebased slab trees,
per-slab scratch buffers, and expansion-index maps — so steady-state
calls allocate nothing, mirroring the parent-side
:class:`~repro.kernels.workspace.KernelWorkspace` guarantee.  Caches are
pruned once they span more than :data:`_MAX_CACHED_TREES` trees (long
sessions churning many engines).

Batches are idempotent by design: a re-executed batch rewrites the same
bytes to the same disjoint ranges, so the pool's dead-worker resubmit
path needs no coordination.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..tensor.csf import CSFTensor
from ..tensor.tiling import CSFSlab
from ..types import INDEX_DTYPE, VALUE_DTYPE
from . import shm

#: Task name the parent submits (see ``procpool.resolve_task_fn``).
TASK_NAME = "repro.parallel.shm_worker:run_slab_batch"

_MAX_CACHED_TREES = 32


class _Scratch:
    """Single-process stand-in for :class:`KernelWorkspace`.

    Implements the two methods the slab sweeps call — ``buf`` (keyed
    reusable arrays) and ``expand_indices`` (the cached gather map
    equivalent to ``np.repeat``) — without locks: each worker is
    single-threaded.
    """

    def __init__(self) -> None:
        self._buffers: dict[object, np.ndarray] = {}
        self._expand: dict[tuple[int, int], np.ndarray] = {}
        self._slabs: dict[int, CSFSlab] = {}

    def register_slab(self, slab: CSFSlab) -> None:
        self._slabs[slab.index] = slab

    def buf(self, key: object, shape: tuple[int, ...],
            dtype: np.dtype = VALUE_DTYPE) -> np.ndarray:
        buf = self._buffers.get(key)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        return buf

    def expand_indices(self, slab_index: int, level: int) -> np.ndarray:
        key = (slab_index, level)
        idx = self._expand.get(key)
        if idx is None:
            counts = np.diff(self._slabs[slab_index].tree.fptr[level])
            idx = np.repeat(
                np.arange(counts.shape[0], dtype=INDEX_DTYPE), counts)
            self._expand[key] = idx
        return idx


class _TreeContext:
    """Attached arrays + rebuilt slabs + scratch for one shared tree."""

    def __init__(self, payload: dict) -> None:
        self.shape = tuple(payload["shape"])
        self.mode_order = tuple(payload["mode_order"])
        self.nmodes = len(self.shape)
        tree = payload["tree"]
        self.fids = [shm.attach(tree[f"fids{l}"])
                     for l in range(self.nmodes)]
        self.fptr = [shm.attach(tree[f"fptr{l}"])
                     for l in range(self.nmodes - 1)]
        self.vals = shm.attach(tree["vals"])
        self.scratch = _Scratch()
        self._slabs: dict[int, CSFSlab] = {}

    def slab(self, index: int,
             node_ranges: tuple[tuple[int, int], ...]) -> CSFSlab:
        cached = self._slabs.get(index)
        if cached is not None:
            return cached
        # Mirror tiling._make_slab: fids/vals are zero-copy views, fptr
        # arrays are rebased copies (made once — the pattern is static).
        fids = [self.fids[l][node_ranges[l][0]:node_ranges[l][1]]
                for l in range(self.nmodes)]
        fptr = [self.fptr[l][node_ranges[l][0]:node_ranges[l][1] + 1]
                - self.fptr[l][node_ranges[l][0]]
                for l in range(self.nmodes - 1)]
        vals = self.vals[node_ranges[-1][0]:node_ranges[-1][1]]
        tree = CSFTensor(self.shape, self.mode_order, fids, fptr, vals)
        slab = CSFSlab(index, tree, tuple(tuple(r) for r in node_ranges))
        self._slabs[index] = slab
        self.scratch.register_slab(slab)
        return slab


#: Per-tree context cache, keyed by the tree group's segment name.
_TREES: dict[str, _TreeContext] = {}


def _tree_context(payload: dict) -> _TreeContext:
    token = payload["tree"]["vals"].segment
    ctx = _TREES.get(token)
    if ctx is None:
        if len(_TREES) >= _MAX_CACHED_TREES:
            _TREES.clear()
            shm.detach_all()
        ctx = _TreeContext(payload)
        _TREES[token] = ctx
    return ctx


def run_slab_batch(payload: dict) -> dict:
    """Execute one worker's share of a tiled MTTKRP call.

    Payload fields: ``kind`` (``root`` | ``leaf`` | ``internal``),
    ``level`` (target CSF level), ``rank``, ``shape``, ``mode_order``,
    ``tree`` (name → handle), ``factors`` (per-mode handles), ``target``
    (output-matrix handle for ``root``, per-node product buffer for
    ``leaf``/``internal``), ``slabs`` (``(index, node_ranges)`` list).

    Returns per-batch stats the parent merges into the call's
    observability record.
    """
    # Imported here, not at module top: the parent imports this module's
    # TASK_NAME without paying for the kernel stack; workers import the
    # kernels exactly once, on their first batch.
    from ..kernels.mttkrp_csf import _slab_downward, _slab_upward

    tick = time.perf_counter()
    ctx = _tree_context(payload)
    kind = payload["kind"]
    level = int(payload["level"])
    rank = int(payload["rank"])
    factors = [shm.attach(h) for h in payload["factors"]]
    target = shm.attach(payload["target"])
    scratch = ctx.scratch

    nnz = 0
    for index, node_ranges in payload["slabs"]:
        slab = ctx.slab(index, node_ranges)
        nnz += slab.nnz
        if kind == "root":
            rows = _slab_upward(slab, factors, 0, scratch, rank)
            target[slab.tree.fids[0]] = rows
        elif kind == "leaf":
            rows = _slab_downward(slab, factors, level, scratch, rank)
            lo, hi = slab.leaf_range
            np.multiply(rows, slab.tree.vals[:, None], out=target[lo:hi])
        elif kind == "internal":
            upward = _slab_upward(slab, factors, level, scratch, rank)
            downward = _slab_downward(slab, factors, level, scratch, rank)
            lo, hi = slab.node_ranges[level]
            np.multiply(upward, downward, out=target[lo:hi])
        else:  # pragma: no cover - parent never sends other kinds
            raise ValueError(f"unknown slab kind {kind!r}")

    return {
        "pid": os.getpid(),
        "slabs": len(payload["slabs"]),
        "nnz": nnz,
        "seconds": time.perf_counter() - tick,
    }
