"""A persistent, crash-tolerant process pool for slab offload.

Why not :class:`concurrent.futures.ProcessPoolExecutor`?  Three reasons,
all load-bearing for the MTTKRP hot path:

* **warm workers** — the pool is spawned once (per executor lifetime)
  and reused across every MTTKRP call of a factorization, so fork/spawn
  cost never lands on the hot path;
* **per-worker pipes** — stdlib pools funnel tasks through one shared
  queue whose reader lock a ``SIGKILL``-ed worker takes to its grave,
  deadlocking the survivors.  Here every worker owns a private duplex
  :func:`multiprocessing.Pipe`; a dead worker strands nothing;
* **surgical recovery** — batches are idempotent (workers write
  disjoint, fully-overwritten ranges of shared output buffers), so when
  a worker's sentinel fires mid-batch the pool respawns a replacement
  and resubmits exactly the unfinished tasks.  Only when the respawn
  budget is exhausted does :class:`ProcessPoolBroken` escalate — the
  engine then falls back to the thread executor with a ``GuardEvent``.

Task model: ``submit_batch(fn_name, payloads)`` round-robins payloads
over the workers and blocks until all results arrive.  ``fn_name`` is a
``"module:function"`` string resolved by :func:`resolve_task_fn` inside
the worker (payloads must pickle; arrays travel as
:class:`repro.parallel.shm.ShmArrayHandle`, never by value).

Start method: ``fork`` where available (cheap, Linux default),
``spawn`` otherwise; override with ``REPRO_PROC_START``.  Workers are
daemonic — an abandoned pool cannot outlive the interpreter.
"""

from __future__ import annotations

import atexit
import importlib
import os
import signal
import time
import traceback
import weakref
from multiprocessing import connection, get_context
from typing import Callable

from ..validation import require

#: Environment override for the worker start method.
START_METHOD_ENV = "REPRO_PROC_START"

#: Replacement workers the pool may spawn within one batch before
#: declaring itself broken.
DEFAULT_RESPAWN_BUDGET = 2

#: Seconds between liveness scans while waiting on batch results.
_WAIT_TICK = 0.25


class ProcessPoolBroken(RuntimeError):
    """The pool lost workers faster than its respawn budget allows."""


class WorkerTaskError(RuntimeError):
    """A task raised inside a worker (original traceback attached)."""


def default_start_method() -> str:
    """``REPRO_PROC_START`` override, else fork where supported."""
    import multiprocessing as mp
    env = os.environ.get(START_METHOD_ENV)
    if env:
        require(env in mp.get_all_start_methods(),
                f"unsupported {START_METHOD_ENV}={env!r}; available: "
                f"{mp.get_all_start_methods()}")
        return env
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def resolve_task_fn(fn_name: str) -> Callable:
    """Import ``"module:function"`` (worker side; cached by the module)."""
    module_name, _, attr = fn_name.partition(":")
    module = importlib.import_module(module_name)
    return getattr(module, attr)


def _worker_main(conn_) -> None:  # pragma: no cover - separate process
    """Worker loop: recv (task_id, fn_name, payload), send (task_id, ...)."""
    fns: dict[str, Callable] = {}
    while True:
        try:
            item = conn_.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        task_id, fn_name, payload = item
        try:
            fn = fns.get(fn_name)
            if fn is None:
                fn = fns[fn_name] = resolve_task_fn(fn_name)
            result = fn(payload)
            conn_.send((task_id, True, result))
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            conn_.send((task_id, False,
                        f"{type(exc).__name__}: {exc}\n"
                        f"{traceback.format_exc()}"))


class _Worker:
    __slots__ = ("process", "conn")

    def __init__(self, ctx) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(target=_worker_main, args=(child_conn,),
                                   daemon=True)
        self.process.start()
        child_conn.close()  # parent keeps only its end
        self.conn = parent_conn

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def shutdown(self, timeout: float = 2.0) -> None:
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout)
        self.conn.close()
        self.process.close()


class ProcessPool:
    """Fixed-size persistent worker pool with dead-worker recovery.

    Parameters
    ----------
    workers:
        Number of worker processes (grown on demand via
        :meth:`ensure_workers`).
    start_method:
        ``multiprocessing`` start method; ``None`` resolves through
        :func:`default_start_method`.
    respawn_budget:
        Replacement workers allowed per batch before
        :class:`ProcessPoolBroken` is raised.
    fault_plan:
        Optional test hook with an ``on_dispatch(pool)`` method, invoked
        before every batch dispatch (see
        :class:`repro.robustness.faults.WorkerKillPlan`).
    """

    def __init__(self, workers: int, start_method: str | None = None,
                 respawn_budget: int = DEFAULT_RESPAWN_BUDGET,
                 fault_plan: object | None = None) -> None:
        require(workers >= 1, "need at least one worker")
        self.start_method = start_method or default_start_method()
        self._ctx = get_context(self.start_method)
        self.respawn_budget = int(respawn_budget)
        self.fault_plan = fault_plan
        self._workers: list[_Worker] = []
        self._task_counter = 0
        self.closed = False
        #: Workers replaced after unexpected death (lifetime total).
        self.respawns = 0
        #: Batches that needed at least one resubmission.
        self.recovered_batches = 0
        spawn_tick = time.perf_counter()
        self.ensure_workers(workers)
        #: Seconds spent spawning the initial workers (amortized cost).
        self.spawn_seconds = time.perf_counter() - spawn_tick
        _LIVE_POOLS.add(self)
        self._finalizer = weakref.finalize(self, _finalize_workers,
                                           self._workers)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._workers)

    def worker_pids(self) -> list[int]:
        return [w.process.pid for w in self._workers]

    def ensure_workers(self, n: int) -> None:
        """Grow the pool to at least *n* workers (never shrinks)."""
        self._check_open()
        while len(self._workers) < n:
            self._workers.append(_Worker(self._ctx))

    def kill_worker(self, index: int) -> int:
        """SIGKILL worker *index* (fault injection); returns its pid."""
        worker = self._workers[index]
        pid = worker.process.pid
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            pass  # already dead (e.g. killed earlier in the same plan)
        worker.process.join(5.0)
        return pid

    # ------------------------------------------------------------------
    def submit_batch(self, fn_name: str, payloads: list[object],
                     timeout: float | None = None) -> list[object]:
        """Run every payload through *fn_name*; results in payload order.

        Survives worker deaths by respawning and resubmitting the
        unfinished payloads (tasks must be idempotent); raises
        :class:`ProcessPoolBroken` once ``respawn_budget`` replacements
        were not enough, and :class:`WorkerTaskError` if a payload
        raised inside a worker.
        """
        self._check_open()
        if not payloads:
            return []
        if self.fault_plan is not None:
            self.fault_plan.on_dispatch(self)
        ids = list(range(self._task_counter,
                         self._task_counter + len(payloads)))
        self._task_counter += len(payloads)
        pending: dict[int, object] = dict(zip(ids, payloads))
        assignment = self._dispatch(fn_name, pending)
        results: dict[int, object] = {}
        respawns_left = self.respawn_budget
        deadline = None if timeout is None else time.monotonic() + timeout

        while len(results) < len(ids):
            ready = connection.wait(
                [w.conn for w in self._workers if w.alive]
                + [w.process.sentinel for w in self._workers],
                timeout=_WAIT_TICK)
            progressed = False
            for w in list(self._workers):
                # Drain dead workers too: results they sent before dying
                # are still buffered in the pipe and still count.
                while True:
                    try:
                        if not w.conn.poll():
                            break
                        task_id, ok, value = w.conn.recv()
                    except (EOFError, OSError):
                        break
                    progressed = True
                    if task_id in results:
                        continue  # duplicate from a resubmitted task
                    if not ok:
                        raise WorkerTaskError(value)
                    results[task_id] = value
                    pending.pop(task_id, None)
                    assignment.pop(task_id, None)
            if len(results) == len(ids):
                break
            dead = [w for w in self._workers if not w.alive]
            if dead:
                # Owed by a dead worker, or never successfully sent.
                lost = {tid: p for tid, p in pending.items()
                        if assignment.get(tid) in dead
                        or tid not in assignment}
                respawns_left -= len(dead)
                if respawns_left < 0:
                    raise ProcessPoolBroken(
                        f"lost {len(dead)} worker(s) with respawn budget "
                        f"exhausted ({self.respawn_budget} per batch)")
                self._replace(dead)
                if self.fault_plan is not None:
                    self.fault_plan.on_dispatch(self)
                # Resubmit everything the dead workers still owed; a
                # slow survivor finishing the same task later is benign
                # (identical bytes to a disjoint range, deduped above).
                if lost:
                    self.recovered_batches += 1
                    assignment.update(self._dispatch(fn_name, lost))
                continue
            if not ready and not progressed and deadline is not None \
                    and time.monotonic() > deadline:
                raise ProcessPoolBroken(
                    f"batch timed out after {timeout:.1f}s with "
                    f"{len(pending)} task(s) outstanding")
        return [results[i] for i in ids]

    def _dispatch(self, fn_name: str,
                  tasks: dict[int, object]) -> dict[int, _Worker]:
        """Round-robin *tasks* over live workers; task_id -> worker map."""
        live = [w for w in self._workers if w.alive]
        if not live:
            raise ProcessPoolBroken("no live workers to dispatch to")
        assignment: dict[int, _Worker] = {}
        for i, (task_id, payload) in enumerate(tasks.items()):
            worker = live[i % len(live)]
            try:
                worker.conn.send((task_id, fn_name, payload))
            except (BrokenPipeError, OSError):
                continue  # death detected by the sentinel scan
            assignment[task_id] = worker
        return assignment

    def _replace(self, dead: list[_Worker]) -> None:
        for worker in dead:
            self._workers.remove(worker)
            try:
                worker.conn.close()
                worker.process.join(0.1)
                worker.process.close()
            except Exception:  # pragma: no cover - best-effort reaping
                pass
            self._workers.append(_Worker(self._ctx))
            self.respawns += 1

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self.closed:
            raise ProcessPoolBroken("pool is closed")

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self.closed:
            return
        self.closed = True
        self._finalizer.detach()
        workers, self._workers = list(self._workers), []
        for worker in workers:
            worker.shutdown()

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


_LIVE_POOLS: "weakref.WeakSet[ProcessPool]" = weakref.WeakSet()


def _finalize_workers(workers: list[_Worker]) -> None:
    for worker in list(workers):
        try:
            worker.shutdown(timeout=0.5)
        except Exception:  # pragma: no cover - best-effort
            pass
    workers.clear()


@atexit.register
def _atexit_close_pools() -> None:  # pragma: no cover - teardown
    for pool in list(_LIVE_POOLS):
        try:
            pool.close()
        except Exception:
            pass
