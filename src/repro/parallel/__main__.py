"""Maintenance entry point: ``python -m repro.parallel --sweep-shm``.

A SIGKILLed interpreter (OOM killer, worker-kill chaos tests, a batch
scheduler's hard preemption) never runs its ``ShmArena`` cleanup, so its
``/dev/shm/repro_shm_*`` segments outlive it and eat shared-memory
space.  The process executor sweeps automatically on startup; this
command does the same sweep on demand — e.g. from a cron job or a CI
leak check — reporting what it removed.
"""

from __future__ import annotations

import argparse
import sys
import warnings

from .shm import stale_segment_names, sweep_stale_segments


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel",
        description="Shared-memory runtime maintenance.")
    parser.add_argument(
        "--sweep-shm", action="store_true",
        help="unlink orphaned repro_shm_* segments whose creating "
             "process is dead")
    parser.add_argument(
        "--dry-run", action="store_true",
        help="with --sweep-shm: list stale segments without removing "
             "them")
    args = parser.parse_args(argv)
    if not args.sweep_shm:
        parser.print_help()
        return 2
    if args.dry_run:
        stale = stale_segment_names()
        for name in stale:
            print(name)
        print(f"{len(stale)} stale segment(s) (not removed: --dry-run)")
        return 0
    with warnings.catch_warnings():
        # The warn-once is for silent library-internal sweeps; here the
        # removal list *is* the requested output.
        warnings.simplefilter("ignore", RuntimeWarning)
        removed = sweep_stale_segments()
    for name in removed:
        print(name)
    print(f"removed {len(removed)} stale segment(s)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
