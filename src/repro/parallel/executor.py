"""Execution backends behind the ``parallel_for`` / ``threads`` interface.

Three executors, selected with ``REPRO_EXECUTOR`` (or the ``executor=``
knob on :class:`~repro.kernels.dispatch.MTTKRPEngine` /
:class:`~repro.core.options.AOADMMOptions` / ``repro.fit``):

``serial``
    Inline loops, no pool of any kind.  The baseline every other
    executor must match bit-for-bit.
``thread``
    The historical :class:`ThreadPoolExecutor` path.  Helps when the
    work releases the GIL (large BLAS calls); does **not** help the
    slab MTTKRP kernels, whose many small NumPy ops re-take the GIL
    between calls (see ``BENCH_mttkrp_tiled.json`` and
    :mod:`repro.parallel.threadpool`).
``process``
    The GIL-free path: a persistent :class:`~repro.parallel.procpool.
    ProcessPool` executing nnz-balanced slab batches against
    shared-memory tensors (:mod:`repro.parallel.shm`).  Closure-based
    ``parallel_for`` calls cannot cross a process boundary, so for
    those this executor degrades to the thread pool; the MTTKRP kernels
    instead detect ``offloads_slabs`` and submit picklable slab-task
    descriptors (:mod:`repro.parallel.shm_worker`).

Executors resolved by *name* are process-wide singletons, so one warm
worker pool serves every engine in the process; pass an instance for an
isolated pool (the fault-injection tests do).  Results are bit-identical
across all three executors and every worker count — that contract is
enforced by the differential harness's family anchors.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Callable, Iterable, Sequence, TypeVar

from ..validation import require
from .procpool import ProcessPool, ProcessPoolBroken
from .shm import sweep_stale_segments
from .threadpool import effective_threads, parallel_for as _thread_for

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable naming the default executor.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

#: Executor used when neither knob nor environment chooses one.
DEFAULT_EXECUTOR = "thread"

EXECUTOR_NAMES = ("serial", "thread", "process")


class _ImmediateResult:
    """A future-shaped wrapper around an already-computed value.

    ``submit_one`` on executors without an async path runs the task
    inline and hands the caller one of these, so call sites can always
    write ``future = ex.submit_one(...); ... ; future.result()``.
    """

    __slots__ = ("_value", "_error")

    def __init__(self, value=None, error: BaseException | None = None):
        self._value = value
        self._error = error

    def result(self, timeout: float | None = None):
        if self._error is not None:
            raise self._error
        return self._value

    def done(self) -> bool:
        return True


class ExecutorBase:
    """Common interface: a named ``parallel_for`` implementation."""

    name: str = "?"
    #: True when the executor can run pickled slab-task batches in
    #: worker processes (the MTTKRP offload protocol).
    offloads_slabs: bool = False

    def parallel_for(self, func: Callable[[T], R], items: Sequence[T],
                     threads: int | None = None) -> list[R]:
        raise NotImplementedError

    def submit_one(self, func: Callable[..., R], *args):
        """Submit a single task; returns a future-like with ``result()``.

        The base implementation runs inline (serial semantics).  Used
        by the out-of-core slab streamer to prefetch the next slab's
        disk read while the parent computes on the current one.
        """
        try:
            return _ImmediateResult(func(*args))
        except BaseException as exc:  # noqa: BLE001 - future semantics
            return _ImmediateResult(error=exc)

    def close(self) -> None:
        """Release pooled resources (idempotent; no-op by default)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class _AsyncSubmitMixin:
    """``submit_one`` on a small lazy thread pool.

    Slab prefetch is file I/O — ``np.memmap`` open plus page-in — which
    releases the GIL, so even for the ``process`` executor a *thread* is
    the right vehicle (array data cannot cheaply cross a process
    boundary anyway).  The pool is created on first use and torn down in
    :meth:`close`.
    """

    _io_pool = None
    _io_pool_lock: threading.Lock

    def submit_one(self, func, *args):
        pool = self._io_pool
        if pool is None:
            with self._io_pool_lock:
                pool = self._io_pool
                if pool is None:
                    from concurrent.futures import ThreadPoolExecutor
                    pool = ThreadPoolExecutor(
                        max_workers=2,
                        thread_name_prefix=f"repro-{self.name}-io")
                    self._io_pool = pool
        try:
            return pool.submit(func, *args)
        except RuntimeError:
            # Pool shut down underneath us (interpreter teardown);
            # degrade to inline execution.
            return ExecutorBase.submit_one(self, func, *args)

    def _close_io_pool(self) -> None:
        with self._io_pool_lock:
            pool, self._io_pool = self._io_pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


class SerialExecutor(ExecutorBase):
    """Inline execution regardless of the requested thread count."""

    name = "serial"

    def parallel_for(self, func, items, threads=None):
        return [func(item) for item in list(items)]


class ThreadExecutor(_AsyncSubmitMixin, ExecutorBase):
    """The GIL-sharing thread pool (see :mod:`repro.parallel.threadpool`)."""

    name = "thread"

    def __init__(self) -> None:
        self._io_pool_lock = threading.Lock()

    def parallel_for(self, func, items, threads=None):
        return _thread_for(func, items, threads=threads)

    def close(self) -> None:
        self._close_io_pool()


class ProcessExecutor(_AsyncSubmitMixin, ExecutorBase):
    """Persistent process pool + shared-memory slab offload.

    The pool is spawned lazily on first use and kept warm for the
    executor's lifetime — fork/spawn cost never recurs on the MTTKRP
    hot path.  ``parallel_for`` (closures) falls back to the thread
    pool; the kernels use :meth:`submit_slab_batches`.
    """

    name = "process"
    offloads_slabs = True

    def __init__(self, max_workers: int | None = None,
                 start_method: str | None = None,
                 respawn_budget: int | None = None,
                 fault_plan: object | None = None) -> None:
        self._max_workers = max_workers
        self._start_method = start_method
        self._respawn_budget = respawn_budget
        self.fault_plan = fault_plan
        self._pool: ProcessPool | None = None
        self._lock = threading.Lock()
        self._io_pool_lock = threading.Lock()

    def pool(self, workers: int | None = None) -> ProcessPool:
        """The warm pool, grown to at least *workers* processes."""
        want = workers or self._max_workers or effective_threads(None)
        with self._lock:
            if self._pool is None or self._pool.closed:
                # Housekeeping before mapping new segments: reclaim
                # /dev/shm space leaked by killed interpreters, so a
                # previous crash cannot starve this pool of shared
                # memory (warns once per sweep when it finds any).
                sweep_stale_segments()
                kwargs = {}
                if self._respawn_budget is not None:
                    kwargs["respawn_budget"] = self._respawn_budget
                self._pool = ProcessPool(want,
                                         start_method=self._start_method,
                                         fault_plan=self.fault_plan,
                                         **kwargs)
            else:
                self._pool.ensure_workers(want)
            self._pool.fault_plan = self.fault_plan
            return self._pool

    @property
    def spawned(self) -> bool:
        return self._pool is not None and not self._pool.closed

    def submit_slab_batches(self, fn_name: str, payloads: list[object],
                            workers: int | None = None) -> list[dict]:
        """Run the batch payloads on the pool; per-batch stats back."""
        return self.pool(workers or len(payloads)).submit_batch(
            fn_name, payloads)

    def parallel_for(self, func, items, threads=None):
        # Arbitrary closures cannot cross the process boundary; keep
        # the call semantics and degrade to the thread pool.
        return _thread_for(func, items, threads=threads)

    def close(self) -> None:
        self._close_io_pool()
        with self._lock:
            if self._pool is not None:
                self._pool.close()
                self._pool = None


_SINGLETONS: dict[str, ExecutorBase] = {}
_SINGLETON_LOCK = threading.Lock()


def get_executor(name: str) -> ExecutorBase:
    """The process-wide singleton executor called *name*."""
    require(name in EXECUTOR_NAMES,
            f"unknown executor {name!r}; choose from {EXECUTOR_NAMES} "
            f"(or set {EXECUTOR_ENV_VAR})")
    with _SINGLETON_LOCK:
        ex = _SINGLETONS.get(name)
        if ex is None:
            ex = {"serial": SerialExecutor,
                  "thread": ThreadExecutor,
                  "process": ProcessExecutor}[name]()
            _SINGLETONS[name] = ex
        return ex


#: Malformed ``REPRO_EXECUTOR`` values already warned about (warn once
#: per value per process — the hot path resolves executors constantly).
_WARNED_ENV_VALUES: set[str] = set()


def resolve_executor(spec: "str | ExecutorBase | None" = None
                     ) -> ExecutorBase:
    """Resolve *spec*: instance → itself; name → singleton; ``None`` →
    ``REPRO_EXECUTOR`` or the ``thread`` default.

    A malformed *explicit* name raises; a malformed **environment**
    value only warns (once per value) and falls back to the default —
    a typo in a shell profile must not turn every library call into a
    crash (mirrors the ``REPRO_NUM_THREADS`` handling in
    :mod:`repro.parallel.threadpool`).
    """
    if isinstance(spec, ExecutorBase):
        return spec
    if spec is None:
        env_value = os.environ.get(EXECUTOR_ENV_VAR)
        if env_value and env_value not in EXECUTOR_NAMES:
            if env_value not in _WARNED_ENV_VALUES:
                _WARNED_ENV_VALUES.add(env_value)
                warnings.warn(
                    f"ignoring malformed {EXECUTOR_ENV_VAR}={env_value!r} "
                    f"(choose from {EXECUTOR_NAMES}); using "
                    f"{DEFAULT_EXECUTOR!r}",
                    RuntimeWarning, stacklevel=2)
            env_value = None
        spec = env_value or DEFAULT_EXECUTOR
    require(isinstance(spec, str),
            f"executor must be a name or ExecutorBase, got {type(spec)}")
    return get_executor(spec)


def parallel_for(func: Callable[[T], R], items: Iterable[T],
                 threads: int | None = None,
                 executor: "str | ExecutorBase | None" = None) -> list[R]:
    """Executor-aware ``parallel_for`` (same contract as the thread one)."""
    return resolve_executor(executor).parallel_for(func, list(items),
                                                   threads=threads)


def shutdown_executors() -> None:
    """Close every singleton executor (tests / leak checks)."""
    with _SINGLETON_LOCK:
        for ex in _SINGLETONS.values():
            ex.close()
        _SINGLETONS.clear()


__all__ = [
    "EXECUTOR_ENV_VAR",
    "DEFAULT_EXECUTOR",
    "EXECUTOR_NAMES",
    "ExecutorBase",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ProcessPoolBroken",
    "get_executor",
    "resolve_executor",
    "parallel_for",
    "shutdown_executors",
]
