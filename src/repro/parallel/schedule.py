"""Loop schedules and their deterministic makespan computation.

Mirrors OpenMP's ``static`` / ``dynamic`` / ``guided`` loop schedules.  The
same logic drives two consumers:

* the real thread pool (which only needs the chunking), and
* the machine model (which replays the schedule against per-item durations
  to compute the parallel makespan of a kernel — Figures 4 and 5).

The paper uses OpenMP ``dynamic`` over blocks for blocked ADMM ("we cannot
statically distribute blocks and instead dynamically load balance ... at
block-level granularity").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..validation import require


@dataclass(frozen=True)
class StaticSchedule:
    """Pre-assigned contiguous chunks, one round-robin pass (OpenMP static).

    ``chunk_size = 0`` means "divide evenly": ceil(n / threads) per thread.
    """

    chunk_size: int = 0
    name: str = "static"

    def chunks(self, n_items: int, threads: int) -> list[tuple[int, int]]:
        size = self.chunk_size or -(-n_items // max(threads, 1))
        size = max(size, 1)
        return [(s, min(s + size, n_items)) for s in range(0, n_items, size)]


@dataclass(frozen=True)
class DynamicSchedule:
    """First-free-thread-takes-next-chunk (OpenMP dynamic)."""

    chunk_size: int = 1
    name: str = "dynamic"

    def chunks(self, n_items: int, threads: int) -> list[tuple[int, int]]:
        size = max(self.chunk_size, 1)
        return [(s, min(s + size, n_items)) for s in range(0, n_items, size)]


@dataclass(frozen=True)
class GuidedSchedule:
    """Exponentially shrinking chunks (OpenMP guided)."""

    min_chunk: int = 1
    name: str = "guided"

    def chunks(self, n_items: int, threads: int) -> list[tuple[int, int]]:
        out: list[tuple[int, int]] = []
        start = 0
        remaining = n_items
        threads = max(threads, 1)
        while remaining > 0:
            size = max(remaining // (2 * threads), self.min_chunk)
            size = min(size, remaining)
            out.append((start, start + size))
            start += size
            remaining -= size
        return out


Schedule = StaticSchedule | DynamicSchedule | GuidedSchedule


@dataclass(frozen=True)
class ScheduleOutcome:
    """Result of replaying a schedule against per-item durations."""

    makespan: float
    per_thread_busy: tuple[float, ...]
    n_chunks: int

    @property
    def imbalance(self) -> float:
        """max busy / mean busy — 1.0 is perfectly balanced."""
        busy = np.asarray(self.per_thread_busy)
        mean = busy.mean() if busy.size else 0.0
        return float(busy.max() / mean) if mean > 0 else 1.0


def run_schedule(durations: np.ndarray, threads: int,
                 schedule: Schedule,
                 per_chunk_overhead: float = 0.0) -> ScheduleOutcome:
    """Deterministically replay *schedule* and return its makespan.

    ``durations[i]`` is the execution time of item ``i``.  Static chunks
    are dealt round-robin; dynamic/guided chunks are claimed by the
    earliest-finishing thread (an event-driven replay using a heap).
    ``per_chunk_overhead`` models the scheduler handshake (atomic fetch of
    the next chunk) — the cost that makes block size 1 suboptimal in
    Section IV-B.
    """
    durations = np.asarray(durations, dtype=np.float64)
    require(threads >= 1, "need at least one thread")
    n = durations.shape[0]
    chunks = schedule.chunks(n, threads)
    chunk_costs = [durations[a:b].sum() + per_chunk_overhead
                   for a, b in chunks]

    busy = np.zeros(threads, dtype=np.float64)
    if isinstance(schedule, StaticSchedule):
        for idx, cost in enumerate(chunk_costs):
            busy[idx % threads] += cost
        makespan = float(busy.max()) if n else 0.0
        return ScheduleOutcome(makespan, tuple(busy), len(chunks))

    # Dynamic/guided: chunks claimed in order by the earliest-free thread.
    heap = [(0.0, t) for t in range(threads)]
    heapq.heapify(heap)
    for cost in chunk_costs:
        free_at, thread = heapq.heappop(heap)
        free_at += cost
        busy[thread] += cost
        heapq.heappush(heap, (free_at, thread))
    makespan = max(free_at for free_at, _ in heap) if n else 0.0
    return ScheduleOutcome(float(makespan), tuple(busy), len(chunks))
