"""Sparse topic discovery with L1-regularized factorization (Table II's
setting) on an Amazon-like user x item x word tensor.

Demonstrates the paper's Section IV-C machinery end to end: the L1
penalty drives the factors sparse *during* the factorization, the engine
notices when a factor crosses the 20% density threshold, switches its
MTTKRP representation to CSR/hybrid, and the trace records both the
density trajectory and the representation switches.

Run:  python examples/sparse_topics.py
"""

from __future__ import annotations

import numpy as np

from repro import AOADMMOptions, fit_aoadmm
from repro.constraints import NonNegativeL1
from repro.datasets import load_dataset

RANK = 12
L1_WEIGHT = 0.05


def main() -> None:
    tensor, _ = load_dataset("amazon", "tiny", seed=11)
    print(f"Amazon-like tensor: {tensor}")

    result = fit_aoadmm(tensor, AOADMMOptions(
        rank=RANK,
        constraints=NonNegativeL1(L1_WEIGHT),
        repr_policy="auto",          # dense -> CSR/CSR-H as factors sparsify
        sparsity_threshold=0.20,     # the paper's 20% rule
        seed=3,
        max_outer_iterations=40,
    ))

    print(f"relative error {result.relative_error:.4f} after "
          f"{result.iterations} iterations\n")

    print("density and representation trajectory "
          "(mode: user / item / word):")
    for record in result.trace.records[::5] + [result.trace.records[-1]]:
        densities = "/".join(f"{d:.3f}" for d in record.factor_densities)
        reps = "/".join(record.representations)
        print(f"  iter {record.iteration:3d}: density {densities}  "
              f"repr {reps}")

    # Topic read-out: sparse word loadings are directly interpretable.
    model = result.model.normalized()
    word_factor = model.factors[2]
    print("\nper-topic word support sizes:")
    for f in model.component_order()[:6]:
        support = int((word_factor[:, f] > 1e-6).sum())
        top = [int(i) for i in np.argsort(-word_factor[:, f])[:5]]
        print(f"  topic {f}: {support:4d} words, top ids {top}")


if __name__ == "__main__":
    main()
