"""Recommender-style analysis of a Reddit-like user x community x word
tensor (the paper's motivating domain).

Factorizes the scaled synthetic Reddit corpus with non-negativity (so
components are additive "interest groups"), then inspects each component:
its top communities, top words, and the number of users it loads on —
exactly the interpretability read-out a practitioner would do.

Run:  python examples/recommender_communities.py
"""

from __future__ import annotations

import numpy as np

from repro import AOADMMOptions, fit_aoadmm
from repro.datasets import load_dataset

RANK = 12
TOP_K = 5


def main() -> None:
    tensor, _ = load_dataset("reddit", "tiny", seed=7)
    users, communities, words = tensor.shape
    print(f"Reddit-like tensor: {users} users x {communities} communities "
          f"x {words} words, {tensor.nnz} non-zeros")

    result = fit_aoadmm(tensor, AOADMMOptions(
        rank=RANK, constraints="nonneg", seed=1,
        max_outer_iterations=60))
    print(f"relative error {result.relative_error:.4f} after "
          f"{result.iterations} iterations\n")

    model = result.model.normalized()
    user_f, comm_f, word_f = model.factors
    order = model.component_order()

    for rank_pos, f in enumerate(order[:4]):
        top_comms = [int(i) for i in np.argsort(-comm_f[:, f])[:TOP_K]]
        top_words = [int(i) for i in np.argsort(-word_f[:, f])[:TOP_K]]
        active_users = int((user_f[:, f] > 0.01).sum())
        print(f"component #{rank_pos} (weight {model.weights[f]:.3g})")
        print(f"  ~{active_users} active users")
        print(f"  top communities: {top_comms}")
        print(f"  top words:       {top_words}")

    # Rating-style prediction: score unobserved (user, community, word)
    # cells by the model value.
    rng = np.random.default_rng(0)
    probes = np.vstack([rng.integers(0, s, size=5) for s in tensor.shape])
    scores = result.model.values_at(probes)
    print("\nmodel scores at 5 random cells:",
          np.array2string(scores, precision=3))


if __name__ == "__main__":
    main()
