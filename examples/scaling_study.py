"""Reproduce the paper's scalability study (Figures 4-5) end to end.

1. Run short *real* factorizations of each scaled corpus to measure the
   ADMM iteration profiles (baseline inner iterations; per-block
   iteration distributions for the blocked variant).
2. Feed full-scale workload descriptors plus those profiles into the
   simulated 2x10-core Xeon.
3. Print the speedup curves for both variants and the base-vs-blocked
   reversal the paper reports.

Run:  python examples/scaling_study.py    (takes a few minutes)
"""

from __future__ import annotations

from repro import AOADMMOptions, fit_aoadmm
from repro.datasets import dataset_names, load_dataset
from repro.machine import (
    FactorizationWorkload,
    THREAD_SWEEP,
    measured_profile,
    speedup_curve,
)

RANK = 50


def main() -> None:
    print("dataset   variant   " +
          "  ".join(f"T={t:>2d}" for t in THREAD_SWEEP))
    for name in dataset_names():
        tensor, _ = load_dataset(name, "tiny", seed=1)
        result = fit_aoadmm(tensor, AOADMMOptions(
            rank=RANK, constraints="nonneg", blocked=True, seed=1,
            max_outer_iterations=3, outer_tolerance=0.0,
            track_block_reports=True))
        inner, blocks = measured_profile(result)
        workload = FactorizationWorkload.from_spec(
            name, rank=RANK, inner_iters=inner, block_iter_profile=blocks)
        for label, blocked in (("base", False), ("blocked", True)):
            curve = speedup_curve(workload, blocked=blocked,
                                  threads=THREAD_SWEEP)
            cells = "  ".join(f"{curve[t]:4.1f}" for t in THREAD_SWEEP)
            print(f"{name:9s} {label:8s}  {cells}")
    print("\npaper endpoints at T=20: base NELL 5.4x ... Patents 12.7x; "
          "blocked Patents 12.7x ... NELL 14.6x (trend reversed)")


if __name__ == "__main__":
    main()
