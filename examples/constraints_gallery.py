"""A tour of the constraint library — the flexibility that motivates
AO-ADMM (Section I: "flexibly support a variety of constraints").

Fits the same tensor under every shipped constraint and reports the
error, the property each constraint enforces, and a verification that the
returned factors actually satisfy it.

Run:  python examples/constraints_gallery.py
"""

from __future__ import annotations

import numpy as np

from repro import AOADMMOptions, fit_aoadmm
from repro.constraints import (
    Box,
    L1,
    L2Squared,
    NonNegative,
    NonNegativeL1,
    RowNormBall,
    RowSimplex,
    Unconstrained,
)
from repro.tensor import COOTensor
from repro.tensor.dense import dense_from_factors
from repro.tensor.random import random_factors

RANK = 6

GALLERY = [
    ("unconstrained (= ALS)", Unconstrained(), None),
    ("non-negative", NonNegative(),
     lambda f: (f >= 0).all()),
    ("L1 (sparse)", L1(0.4),
     lambda f: (f == 0).mean() > 0.0),
    ("non-negative + L1", NonNegativeL1(0.4),
     lambda f: (f >= 0).all()),
    ("ridge", L2Squared(0.05), None),
    ("box [0, 1]", Box(0.0, 1.0),
     lambda f: ((f >= -1e-9) & (f <= 1.0 + 1e-9)).all()),
    ("row simplex", RowSimplex(),
     lambda f: np.allclose(f.sum(axis=1), 1.0, atol=1e-5)),
    ("row norm ball", RowNormBall(1.0),
     lambda f: (np.linalg.norm(f, axis=1) <= 1.0 + 1e-6).all()),
]


def main() -> None:
    # Fully observed noisy low-rank tensor: every constraint has a
    # meaningful solution to find, so the errors are comparable.
    rng = np.random.default_rng(33)
    truth = random_factors((40, 35, 30), RANK, seed=33, nonneg=True)
    dense = dense_from_factors(truth)
    dense += 0.05 * dense.std() * rng.standard_normal(dense.shape)
    tensor = COOTensor.from_dense(np.maximum(dense, 0.0))
    print(f"tensor: {tensor}\n")
    print(f"{'constraint':24s} {'error':>8s}  {'iters':>5s}  holds?")
    for label, constraint, check in GALLERY:
        # Apply the showcased constraint to the middle mode only, keep the
        # others non-negative (mixing constraints per mode is a one-liner).
        per_mode = [NonNegative(), constraint, NonNegative()]
        result = fit_aoadmm(tensor, AOADMMOptions(
            rank=RANK, constraints=per_mode, seed=4,
            max_outer_iterations=40))
        factor = result.model.factors[1]
        holds = "-" if check is None else str(bool(check(factor)))
        print(f"{label:24s} {result.relative_error:8.4f}  "
              f"{result.iterations:5d}  {holds}")


if __name__ == "__main__":
    main()
