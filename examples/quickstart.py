"""Quickstart: factorize a sparse tensor with constrained AO-ADMM.

Builds a small synthetic sparse tensor with planted non-negative low-rank
structure, runs the accelerated (blocked) AO-ADMM solver, and checks that
the planted components were recovered.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import AOADMMOptions, factor_match_score, fit_aoadmm
from repro.tensor import COOTensor
from repro.tensor.dense import dense_from_factors
from repro.tensor.random import random_factors


def main() -> None:
    # 1. A 60 x 50 x 40 tensor with exact rank-8 non-negative structure
    #    plus 2% noise.  (The generators in repro.datasets build the
    #    paper's hypersparse power-law corpora; this quickstart uses a
    #    fully observed tensor so recovery is exact.)
    rng = np.random.default_rng(42)
    truth = random_factors((60, 50, 40), 8, seed=42, nonneg=True)
    dense = dense_from_factors(truth)
    dense += 0.02 * dense.std() * rng.standard_normal(dense.shape)
    tensor = COOTensor.from_dense(np.maximum(dense, 0.0))
    print(f"tensor: {tensor}")

    # 2. Configure the factorization.  Defaults follow the paper: blocked
    #    ADMM with 50-row blocks, outer tolerance 1e-6.
    options = AOADMMOptions(
        rank=8,
        constraints="nonneg",   # any name from available_constraints()
        blocked=True,
        seed=0,
        max_outer_iterations=80,
    )

    # 3. Fit.
    result = fit_aoadmm(tensor, options)
    print(f"stopped after {result.iterations} outer iterations "
          f"({result.stop_reason}); relative error "
          f"{result.relative_error:.4f}")

    # 4. Inspect the model.
    model = result.model
    print(f"rank-{model.rank} model, factor shapes: "
          f"{[f.shape for f in model.factors]}")
    print(f"factor match score vs planted truth: "
          f"{factor_match_score(model, truth):.3f}")

    # 5. The trace carries everything the paper's figures are made of.
    fractions = result.trace.time_fractions()
    print("time fractions: "
          + ", ".join(f"{k}={v:.2f}" for k, v in fractions.items()))


if __name__ == "__main__":
    main()
