"""Tensor-based anomaly detection on a power-law user x community x word
corpus (cybersecurity/knowledge-base use case from the paper's intro).

Recipe: factor the tensor with non-negativity, then score every observed
triple by its reconstruction residual — triples the low-rank model cannot
explain are anomalies.  Injected corruptions must rank near the top.

Run:  python examples/anomaly_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import AOADMMOptions, fit_aoadmm
from repro.datasets import load_dataset
from repro.tensor import COOTensor

RANK = 6
N_ANOMALIES = 25


def inject_anomalies(tensor: COOTensor, count: int,
                     rng: np.random.Generator) -> tuple[COOTensor,
                                                        np.ndarray]:
    """Plant `count` random high-magnitude triples; return their ids."""
    coords = np.vstack([rng.integers(0, s, size=count)
                        for s in tensor.shape])
    scale = float(np.abs(tensor.vals).max())
    vals = rng.uniform(8.0, 15.0, size=count) * scale
    merged = COOTensor(
        np.hstack([tensor.coords, coords]),
        np.hstack([tensor.vals, vals]),
        tensor.shape).deduplicate()
    return merged, coords


def main() -> None:
    tensor, _ = load_dataset("reddit", "tiny", seed=19)
    rng = np.random.default_rng(5)
    corrupted, planted = inject_anomalies(tensor, N_ANOMALIES, rng)
    print(f"Reddit-like tensor with {N_ANOMALIES} injected anomalies: "
          f"{corrupted}")

    result = fit_aoadmm(corrupted, AOADMMOptions(
        rank=RANK, constraints="nonneg", seed=2,
        max_outer_iterations=50))
    print(f"relative error {result.relative_error:.4f}")

    # Residual score per observed entry.
    predictions = result.model.values_at(corrupted.coords)
    residuals = np.abs(corrupted.vals - predictions)
    ranking = np.argsort(-residuals)

    # How many planted anomalies appear in the top 2N residuals?
    planted_set = {tuple(planted[:, i]) for i in range(planted.shape[1])}
    top = ranking[: 2 * N_ANOMALIES]
    hits = sum(tuple(corrupted.coords[:, p]) in planted_set for p in top)
    print(f"\nrecall@{2 * N_ANOMALIES}: {hits}/{N_ANOMALIES} planted "
          f"anomalies in the top residuals")

    print("top 5 anomalous triples (coords, observed, predicted):")
    for p in ranking[:5]:
        coord = tuple(int(c) for c in corrupted.coords[:, p])
        print(f"  {coord}  observed={corrupted.vals[p]:9.2f}  "
              f"predicted={predictions[p]:9.2f}")


if __name__ == "__main__":
    main()
