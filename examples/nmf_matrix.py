"""Constrained matrix factorization (NMF) with the same machinery.

The paper (Section II-A): "the algorithms described in this work are
equally applicable to both matrices and higher order tensors."  A matrix
is a 2-mode tensor: the CSF degenerates to CSR, MTTKRP to SpMM, and
AO-ADMM to the ADMM-based constrained NMF of Huang et al.

This example factorizes a sparse document-term-style matrix with
non-negativity plus L1 on the term factor, i.e. sparse NMF topics.

Run:  python examples/nmf_matrix.py
"""

from __future__ import annotations

import numpy as np

from repro import AOADMMOptions, fit_aoadmm
from repro.constraints import NonNegative, NonNegativeL1
from repro.tensor import COOTensor
from repro.tensor.random import random_factors

N_DOCS, N_TERMS, RANK = 400, 1200, 8


def build_corpus(seed: int = 0) -> COOTensor:
    """A synthetic sparse doc-term matrix with planted topics."""
    rng = np.random.default_rng(seed)
    truth = random_factors((N_DOCS, N_TERMS), RANK, seed=seed, nonneg=True)
    # Localize topics: each topic touches a random 5% of the vocabulary.
    for f in range(RANK):
        mask = rng.uniform(size=N_TERMS) > 0.05
        truth[1][mask, f] = 0.0
    # Sample term occurrences from the model's mass.
    docs, terms, counts = [], [], []
    probs = truth[0] @ truth[1].T
    probs /= probs.sum()
    flat = rng.choice(probs.size, size=40_000, p=probs.ravel())
    d, t = np.unravel_index(flat, probs.shape)
    return COOTensor.from_arrays(
        [d, t], np.ones(len(d)), shape=(N_DOCS, N_TERMS)).deduplicate()


def main() -> None:
    matrix = build_corpus()
    print(f"document-term matrix: {matrix}")

    result = fit_aoadmm(matrix, AOADMMOptions(
        rank=RANK,
        constraints=[NonNegative(), NonNegativeL1(0.3)],
        seed=1,
        max_outer_iterations=60,
    ))
    print(f"relative error {result.relative_error:.4f} after "
          f"{result.iterations} iterations")

    doc_f, term_f = result.model.normalized().factors
    print(f"term-factor density: "
          f"{np.count_nonzero(term_f) / term_f.size:.3f} "
          f"(L1 prunes the vocabulary per topic)\n")
    print("topics (top-6 term ids, support size):")
    for f in range(RANK):
        support = int((term_f[:, f] > 1e-9).sum())
        top = [int(i) for i in np.argsort(-term_f[:, f])[:6]]
        print(f"  topic {f}: support {support:4d}  top terms {top}")


if __name__ == "__main__":
    main()
